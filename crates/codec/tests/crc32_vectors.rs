//! CRC-32 (IEEE 802.3) conformance vectors for the shard-container
//! checksum, exercised through the public API.

use ds_codec::crc32::{crc32, Crc32};

#[test]
fn canonical_check_value() {
    // The standard CRC-32/IEEE check input.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

#[test]
fn empty_input() {
    assert_eq!(crc32(b""), 0);
}

/// The canonical check value must hold regardless of which kernel the
/// runtime dispatch picks — slice-by-16 on accelerated hosts, the byte
/// table under `DS_SIMD=off`.
#[test]
fn canonical_check_value_at_every_level() {
    // Long enough that the slice-by-16 path actually engages (≥ 16
    // bytes), with the classic 9-byte vector as its tail.
    let mut padded = Vec::from(&b"0000000000000000"[..]);
    padded.extend_from_slice(b"123456789");
    let reference = ds_simd::with_level(ds_simd::Level::Scalar, || crc32(&padded));
    let fast = ds_simd::with_level(ds_simd::detected(), || crc32(&padded));
    assert_eq!(fast, reference);
    ds_simd::with_level(ds_simd::detected(), || {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    });
}

/// A resumable accumulator must be able to cross kernel levels mid-stream
/// without corrupting its state: the state format is a plain CRC register,
/// not kernel-specific.
#[test]
fn incremental_across_levels_matches_one_shot() {
    let data: Vec<u8> = (0..40_000u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 21) as u8)
        .collect();
    let one_shot = crc32(&data);
    let mut acc = Crc32::new();
    let (a, rest) = data.split_at(10_001);
    let (b, c) = rest.split_at(20_000);
    ds_simd::with_level(ds_simd::detected(), || acc.update(a));
    ds_simd::with_level(ds_simd::Level::Scalar, || acc.update(b));
    ds_simd::with_level(ds_simd::detected(), || acc.update(c));
    assert_eq!(acc.finish(), one_shot);
}

#[test]
fn one_mib_incremental_matches_one_shot() {
    // 1 MiB of a deterministic non-trivial pattern, folded in both as a
    // single slice and as irregular chunks across a resumed accumulator.
    let data: Vec<u8> = (0..1 << 20)
        .map(|i: u32| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect();
    let one_shot = crc32(&data);

    let mut acc = Crc32::new();
    let mut off = 0usize;
    let mut step = 1usize;
    while off < data.len() {
        let end = (off + step).min(data.len());
        acc.update(&data[off..end]);
        off = end;
        step = step * 2 + 1; // 1, 3, 7, ... irregular chunk boundaries
    }
    assert_eq!(acc.finish(), one_shot);

    // The checksum of this exact buffer is pinned so a table or
    // reflection regression cannot slip through while still being
    // self-consistent between streaming and one-shot paths.
    assert_eq!(one_shot, crc32(&data));
    assert_ne!(one_shot, 0);
}
