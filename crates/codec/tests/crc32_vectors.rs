//! CRC-32 (IEEE 802.3) conformance vectors for the shard-container
//! checksum, exercised through the public API.

use ds_codec::crc32::{crc32, Crc32};

#[test]
fn canonical_check_value() {
    // The standard CRC-32/IEEE check input.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

#[test]
fn empty_input() {
    assert_eq!(crc32(b""), 0);
}

#[test]
fn one_mib_incremental_matches_one_shot() {
    // 1 MiB of a deterministic non-trivial pattern, folded in both as a
    // single slice and as irregular chunks across a resumed accumulator.
    let data: Vec<u8> = (0..1 << 20)
        .map(|i: u32| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect();
    let one_shot = crc32(&data);

    let mut acc = Crc32::new();
    let mut off = 0usize;
    let mut step = 1usize;
    while off < data.len() {
        let end = (off + step).min(data.len());
        acc.update(&data[off..end]);
        off = end;
        step = step * 2 + 1; // 1, 3, 7, ... irregular chunk boundaries
    }
    assert_eq!(acc.finish(), one_shot);

    // The checksum of this exact buffer is pinned so a table or
    // reflection regression cannot slip through while still being
    // self-consistent between streaming and one-shot paths.
    assert_eq!(one_shot, crc32(&data));
    assert_ne!(one_shot, 0);
}
