//! Property-based tests for every codec: arbitrary inputs must roundtrip,
//! and arbitrary (corrupt) bytes must never panic a decoder.

use ds_codec::{bitpack, delta, dict::Dictionary, gzlike, huffman, lzss, parq, rle};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut w = ds_codec::ByteWriter::new();
        w.write_varint(v);
        let bytes = w.into_vec();
        let mut r = ds_codec::ByteReader::new(&bytes);
        prop_assert_eq!(r.read_varint().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(ds_codec::varint::unzigzag(ds_codec::varint::zigzag(v)), v);
    }

    #[test]
    fn rle_roundtrip(values in prop::collection::vec(0u32..50, 0..500)) {
        let enc = rle::encode(&values);
        prop_assert_eq!(rle::decode(&enc).unwrap(), values);
    }

    #[test]
    fn delta_roundtrip(values in prop::collection::vec(any::<i64>(), 0..500)) {
        let enc = delta::encode_i64(&values);
        prop_assert_eq!(delta::decode_i64(&enc).unwrap(), values);
    }

    #[test]
    fn bitpack_roundtrip(values in prop::collection::vec(0u64..(1 << 30), 0..500)) {
        let enc = bitpack::encode(&values);
        prop_assert_eq!(bitpack::decode(&enc).unwrap(), values);
    }

    #[test]
    fn dict_roundtrip(values in prop::collection::vec("[a-z]{0,8}", 0..200)) {
        let (dict, codes) = Dictionary::encode_column(&values);
        prop_assert_eq!(dict.decode_column(&codes).unwrap(), values.clone());
        // Serialized dictionary reproduces the same mapping.
        let restored = Dictionary::from_bytes(&dict.to_bytes()).unwrap();
        prop_assert_eq!(restored.decode_column(&codes).unwrap(), values);
    }

    #[test]
    fn huffman_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let enc = huffman::encode_bytes(&data);
        prop_assert_eq!(huffman::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let enc = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&enc).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_low_entropy(data in prop::collection::vec(0u8..4, 0..6000)) {
        let enc = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&enc).unwrap(), data);
    }

    #[test]
    fn gzlike_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let enc = gzlike::compress(&data);
        prop_assert_eq!(gzlike::decompress(&enc).unwrap(), data);
    }

    #[test]
    fn gzlike_roundtrip_repetitive(
        unit in prop::collection::vec(any::<u8>(), 1..40),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let enc = gzlike::compress(&data);
        prop_assert_eq!(gzlike::decompress(&enc).unwrap(), data);
    }

    /// Runtime kernel selection must never change bytes: the accelerated
    /// pack/delta/crc paths and their scalar references (DS_SIMD=off)
    /// must agree on arbitrary inputs — encoded bytes, decoded values,
    /// and checksums alike.
    #[test]
    fn simd_and_scalar_paths_byte_identical(
        ints in prop::collection::vec(any::<i64>(), 0..300),
        codes in prop::collection::vec(0u64..(1 << 45), 0..300),
        raw in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let detected = ds_simd::detected();
        let scalar = ds_simd::Level::Scalar;

        let d_fast = ds_simd::with_level(detected, || delta::encode_i64(&ints));
        let d_slow = ds_simd::with_level(scalar, || delta::encode_i64(&ints));
        prop_assert_eq!(&d_fast, &d_slow);
        prop_assert_eq!(
            ds_simd::with_level(detected, || delta::decode_i64(&d_fast)),
            ds_simd::with_level(scalar, || delta::decode_i64(&d_fast))
        );

        let b_fast = ds_simd::with_level(detected, || bitpack::encode(&codes));
        let b_slow = ds_simd::with_level(scalar, || bitpack::encode(&codes));
        prop_assert_eq!(&b_fast, &b_slow);
        prop_assert_eq!(
            ds_simd::with_level(detected, || bitpack::decode(&b_fast)),
            ds_simd::with_level(scalar, || bitpack::decode(&b_fast))
        );

        prop_assert_eq!(
            ds_simd::with_level(detected, || ds_codec::crc32::crc32(&raw)),
            ds_simd::with_level(scalar, || ds_codec::crc32::crc32(&raw))
        );
    }

    /// Garbage decoding must behave identically (same value or same
    /// error) whichever kernel level is active.
    #[test]
    fn simd_and_scalar_decoders_agree_on_garbage(
        data in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        prop_assert_eq!(
            ds_simd::with_level(ds_simd::detected(), || delta::decode_i64(&data)),
            ds_simd::with_level(ds_simd::Level::Scalar, || delta::decode_i64(&data))
        );
        prop_assert_eq!(
            ds_simd::with_level(ds_simd::detected(), || bitpack::decode(&data)),
            ds_simd::with_level(ds_simd::Level::Scalar, || bitpack::decode(&data))
        );
    }

    #[test]
    fn decoders_never_panic_on_garbage(data in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = rle::decode(&data);
        let _ = delta::decode_i64(&data);
        let _ = bitpack::decode(&data);
        let _ = huffman::decode_bytes(&data);
        let _ = lzss::decompress(&data);
        let _ = gzlike::decompress(&data);
        let _ = parq::read_table(&data);
        let _ = Dictionary::from_bytes(&data);
    }

    #[test]
    fn parq_u32_column_roundtrip(values in prop::collection::vec(0u32..10000, 0..300)) {
        let cols = vec![("c".to_string(), parq::ParqColumn::U32(values))];
        let (bytes, _) = parq::write_table(&cols).unwrap();
        prop_assert_eq!(parq::read_table(&bytes).unwrap(), cols);
    }

    #[test]
    fn parq_f64_column_roundtrip(values in prop::collection::vec(any::<f64>(), 0..300)) {
        let cols = vec![("f".to_string(), parq::ParqColumn::F64(values))];
        let (bytes, _) = parq::write_table(&cols).unwrap();
        let decoded = parq::read_table(&bytes).unwrap();
        match (&decoded[0].1, &cols[0].1) {
            (parq::ParqColumn::F64(a), parq::ParqColumn::F64(b)) => {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => prop_assert!(false, "wrong column type"),
        }
    }

    #[test]
    fn rangecoder_adaptive_roundtrip(
        symbols in prop::collection::vec(0usize..17, 1..400),
    ) {
        use ds_codec::rangecoder::{AdaptiveModel, RangeDecoder, RangeEncoder};
        let mut m = AdaptiveModel::new(17).unwrap();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            m.encode(&mut enc, s).unwrap();
        }
        let bytes = enc.finish();
        let mut m = AdaptiveModel::new(17).unwrap();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in &symbols {
            prop_assert_eq!(m.decode(&mut dec).unwrap(), s);
        }
    }
}
