//! SIMD bit-identity contract: the AVX2/NEON kernels and the scalar
//! fallback implement one fixed accumulation schedule (DESIGN.md §3f),
//! so forcing `Level::Scalar` must reproduce the host-detected level
//! bit-for-bit on every shape — including the awkward ones the vector
//! paths handle with tail code. On scalar-only hosts these tests are
//! vacuously true (both sides run the same kernel); on AVX2/NEON hosts
//! they pin the vector implementations to the scalar spec.

use ds_nn::Mat;
use ds_simd::Level;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pseudo-random matrix with ReLU-like sparsity so the all-zero-quad
/// and zero-coefficient skip paths get exercised too.
fn rand_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let data = (0..rows * cols)
        .map(|_| {
            let v: f32 = rng.gen();
            if v < 0.25 {
                0.0
            } else {
                (v - 0.6) * 3.0
            }
        })
        .collect();
    Mat::from_vec(rows, cols, data)
}

fn bits(m: &Mat) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

/// All three products at a forced level.
fn products_at(level: Level, a: &Mat, b: &Mat, bt: &Mat, at: &Mat) -> (Mat, Mat, Mat) {
    ds_simd::with_level(level, || (a.matmul(b), a.matmul_t(bt), at.t_matmul(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Awkward small shapes: rows not a multiple of the 4-row quad,
    /// columns not a multiple of any lane width, k below the lane
    /// group. Every product must be bit-identical scalar vs detected.
    #[test]
    fn simd_bit_identical_awkward_shapes(
        m in 1usize..18,
        k in 1usize..20,
        n in 1usize..19,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_mat(m, k, &mut rng);
        let b = rand_mat(k, n, &mut rng);
        let bt = rand_mat(n, k, &mut rng);
        let at = rand_mat(k, m, &mut rng);
        let fast = products_at(ds_simd::detected(), &a, &b, &bt, &at);
        let slow = products_at(Level::Scalar, &a, &b, &bt, &at);
        prop_assert_eq!(bits(&fast.0), bits(&slow.0));
        prop_assert_eq!(bits(&fast.1), bits(&slow.1));
        prop_assert_eq!(bits(&fast.2), bits(&slow.2));
    }

    /// Shapes straddling the parallel-path threshold, crossed with
    /// thread limits: the level must be resolved on the calling thread
    /// and honored by every pool worker.
    #[test]
    fn simd_bit_identical_blocked_path(
        m in 90usize..140,
        k in 90usize..130,
        n in 70usize..110,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_mat(m, k, &mut rng);
        let b = rand_mat(k, n, &mut rng);
        let bt = rand_mat(n, k, &mut rng);
        let at = rand_mat(k, m, &mut rng);
        let slow = ds_exec::with_thread_limit(1, || {
            products_at(Level::Scalar, &a, &b, &bt, &at)
        });
        for limit in [1usize, 8] {
            let fast = ds_exec::with_thread_limit(limit, || {
                products_at(ds_simd::detected(), &a, &b, &bt, &at)
            });
            prop_assert_eq!(bits(&fast.0), bits(&slow.0));
            prop_assert_eq!(bits(&fast.1), bits(&slow.1));
            prop_assert_eq!(bits(&fast.2), bits(&slow.2));
        }
    }
}

/// Degenerate shapes — empty matrices and k below every lane width —
/// hit the early-return and pure-tail paths without touching a single
/// vector register.
#[test]
fn simd_bit_identical_degenerate_shapes() {
    let mut rng = StdRng::seed_from_u64(99);
    for (m, k, n) in [
        (0usize, 5usize, 5usize),
        (5, 0, 5),
        (5, 5, 0),
        (0, 0, 0),
        (1, 1, 1),
        (3, 2, 1), // k=2 < NEON's 4 and AVX2's 8 lanes
        (4, 7, 8), // k=7 just under the 8-lane group
    ] {
        let a = rand_mat(m, k, &mut rng);
        let b = rand_mat(k, n, &mut rng);
        let bt = rand_mat(n, k, &mut rng);
        let at = rand_mat(k, m, &mut rng);
        let fast = products_at(ds_simd::detected(), &a, &b, &bt, &at);
        let slow = products_at(Level::Scalar, &a, &b, &bt, &at);
        assert_eq!(bits(&fast.0), bits(&slow.0), "matmul {m}x{k}x{n}");
        assert_eq!(bits(&fast.1), bits(&slow.1), "matmul_t {m}x{k}x{n}");
        assert_eq!(bits(&fast.2), bits(&slow.2), "t_matmul {m}x{k}x{n}");
    }
}
