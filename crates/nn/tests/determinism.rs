//! Determinism contract of the execution layer: every parallel kernel
//! must produce bit-identical results for any thread count, because the
//! decompressor must reproduce the compressor's floats exactly on
//! whatever hardware it runs on.

use ds_nn::{train_pass_data_parallel, Autoencoder, Head, Mat, ModelSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pseudo-random matrix with ReLU-like sparsity.
fn rand_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
    let data = (0..rows * cols)
        .map(|_| {
            let v: f32 = rng.gen();
            if v < 0.25 {
                0.0
            } else {
                (v - 0.6) * 3.0
            }
        })
        .collect();
    Mat::from_vec(rows, cols, data)
}

fn bits(m: &Mat) -> Vec<u32> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// matmul and matmul_t over odd shapes straddling the parallel-path
    /// threshold: thread limits 1, 2 and 8 must agree bit-for-bit.
    #[test]
    fn matmul_kernels_thread_invariant(
        m in 60usize..200,
        k in 60usize..150,
        n in 30usize..120,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_mat(m, k, &mut rng);
        let b = rand_mat(k, n, &mut rng);
        let bt = rand_mat(n, k, &mut rng);
        let serial = ds_exec::with_thread_limit(1, || (a.matmul(&b), a.matmul_t(&bt)));
        for limit in [2usize, 8] {
            let par = ds_exec::with_thread_limit(limit, || (a.matmul(&b), a.matmul_t(&bt)));
            prop_assert_eq!(bits(&serial.0), bits(&par.0));
            prop_assert_eq!(bits(&serial.1), bits(&par.1));
        }
    }
}

/// Builds a small mixed-head model plus a consistent training batch.
fn model_and_batch(rows: usize, seed: u64) -> (Autoencoder, Mat, Vec<u32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ModelSpec::with_defaults(
        vec![
            Head::Numeric,
            Head::Categorical { card: 5 },
            Head::Binary,
            Head::Numeric,
        ],
        3,
    );
    let model = Autoencoder::new(spec, &mut rng).expect("valid spec");
    let mut x = Mat::zeros(rows, 4);
    let mut cats = vec![0u32; rows];
    let mut weights = Vec::with_capacity(rows);
    for (r, cat) in cats.iter_mut().enumerate() {
        let v: f32 = rng.gen();
        x.set(r, 0, v);
        let c = (v * 4.999) as u32;
        *cat = c;
        x.set(r, 1, c as f32 / 4.0);
        x.set(r, 2, if v > 0.4 { 1.0 } else { 0.0 });
        x.set(r, 3, 1.0 - v);
        weights.push(0.5 + rng.gen::<f32>());
    }
    (model, x, cats, weights)
}

/// Chunked train_pass gradients: for a fixed chunk size the reduction
/// must be bit-identical across thread limits 1, 2 and 8 — including
/// odd chunk sizes that leave ragged final chunks.
#[test]
fn train_pass_gradients_thread_invariant() {
    let (model, x, cats, weights) = model_and_batch(97, 42);
    let cat_targets = vec![cats];
    for chunk in [7usize, 31, 32, 33, 97, 128] {
        let (g_serial, l_serial) = ds_exec::with_thread_limit(1, || {
            train_pass_data_parallel(&model, &x, &cat_targets, Some(&weights), chunk)
        })
        .expect("serial pass");
        for limit in [2usize, 8] {
            let (g_par, l_par) = ds_exec::with_thread_limit(limit, || {
                train_pass_data_parallel(&model, &x, &cat_targets, Some(&weights), chunk)
            })
            .expect("parallel pass");
            assert_eq!(g_serial.len(), g_par.len());
            for (gs, gp) in g_serial.iter().zip(&g_par) {
                assert_eq!(
                    bits(&gs.dw),
                    bits(&gp.dw),
                    "dw differs: chunk {chunk}, limit {limit}"
                );
                let dbs: Vec<u32> = gs.db.iter().map(|v| v.to_bits()).collect();
                let dbp: Vec<u32> = gp.db.iter().map(|v| v.to_bits()).collect();
                assert_eq!(dbs, dbp, "db differs: chunk {chunk}, limit {limit}");
            }
            let ls: Vec<u32> = l_serial.iter().map(|v| v.to_bits()).collect();
            let lp: Vec<u32> = l_par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ls, lp, "losses differ: chunk {chunk}, limit {limit}");
        }
    }
}

/// Per-tuple losses from the chunked pass must be bit-identical to the
/// unchunked pass regardless of chunk size (each row's forward pass is
/// independent), even though gradient association may differ.
#[test]
fn chunked_losses_match_unchunked() {
    let (model, x, cats, weights) = model_and_batch(80, 7);
    let cat_targets = vec![cats];
    let (_, l_whole) = model
        .train_pass(&x, &cat_targets, Some(&weights))
        .expect("whole pass");
    for chunk in [9usize, 16, 33] {
        let (_, l_chunked) =
            train_pass_data_parallel(&model, &x, &cat_targets, Some(&weights), chunk)
                .expect("chunked pass");
        let a: Vec<u32> = l_whole.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = l_chunked.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "chunk {chunk}");
    }
}

/// Full end-to-end MoE training must be bit-identical across thread
/// limits: same epoch losses, same weights, same assignments.
#[test]
fn moe_training_thread_invariant() {
    use ds_nn::{MoeAutoencoder, MoeConfig};
    let mut rng = StdRng::seed_from_u64(11);
    let n = 96;
    let mut x = Mat::zeros(n, 3);
    for r in 0..n {
        let t: f32 = rng.gen();
        x.set(r, 0, t);
        x.set(r, 1, if r % 2 == 0 { 0.8 * t } else { 0.9 - 0.8 * t });
        x.set(r, 2, (r % 2) as f32);
    }
    let spec = ModelSpec::with_defaults(vec![Head::Numeric; 3], 2);
    let cfg = MoeConfig {
        n_experts: 2,
        max_epochs: 4,
        seed: 5,
        batch_size: 33, // ragged chunks on purpose
        ..Default::default()
    };
    let (m1, r1) =
        ds_exec::with_thread_limit(1, || MoeAutoencoder::train(&spec, &x, &[], &cfg)).unwrap();
    for limit in [2usize, 8] {
        let (m2, r2) =
            ds_exec::with_thread_limit(limit, || MoeAutoencoder::train(&spec, &x, &[], &cfg))
                .unwrap();
        let l1: Vec<u32> = r1.epoch_losses.iter().map(|v| v.to_bits()).collect();
        let l2: Vec<u32> = r2.epoch_losses.iter().map(|v| v.to_bits()).collect();
        assert_eq!(l1, l2, "epoch losses differ at limit {limit}");
        for (e1, e2) in m1.experts().iter().zip(m2.experts()) {
            for (a, b) in e1.layers().iter().zip(e2.layers()) {
                assert_eq!(bits(&a.w), bits(&b.w), "weights differ at limit {limit}");
            }
        }
        assert_eq!(m1.assign(&x), m2.assign(&x));
    }
}
