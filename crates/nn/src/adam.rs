//! Adam optimizer (Kingma & Ba) with per-parameter first/second moments.

use crate::dense::{Dense, DenseGrad};
use crate::mat::Mat;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Optimizer state for one [`Dense`] layer.
#[derive(Debug, Clone)]
pub struct AdamState {
    mw: Mat,
    vw: Mat,
    mb: Vec<f32>,
    vb: Vec<f32>,
    /// Time step (shared across the layer).
    t: u64,
}

impl AdamState {
    /// Fresh state matching `layer`'s shape.
    pub fn for_layer(layer: &Dense) -> Self {
        AdamState {
            mw: Mat::zeros(layer.w.rows(), layer.w.cols()),
            vw: Mat::zeros(layer.w.rows(), layer.w.cols()),
            mb: vec![0.0; layer.b.len()],
            vb: vec![0.0; layer.b.len()],
            t: 0,
        }
    }

    /// Applies one Adam update to `layer` given its gradient.
    pub fn step(&mut self, layer: &mut Dense, grad: &DenseGrad, cfg: &AdamConfig) {
        self.t += 1;
        let bc1 = 1.0 - cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(self.t as i32);

        let w = layer.w.data_mut();
        let g = grad.dw.data();
        let m = self.mw.data_mut();
        let v = self.vw.data_mut();
        for i in 0..w.len() {
            m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g[i];
            v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g[i] * g[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            w[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        }
        for i in 0..layer.b.len() {
            let gi = grad.db[i];
            self.mb[i] = cfg.beta1 * self.mb[i] + (1.0 - cfg.beta1) * gi;
            self.vb[i] = cfg.beta2 * self.vb[i] + (1.0 - cfg.beta2) * gi * gi;
            let mhat = self.mb[i] / bc1;
            let vhat = self.vb[i] / bc2;
            layer.b[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Adam must drive a 1-d quadratic toward its minimum.
    #[test]
    fn minimizes_quadratic() {
        let mut rng = StdRng::seed_from_u64(4);
        // One weight, no bias use: minimize (w - 3)^2.
        let mut layer = Dense::xavier(1, 1, Activation::Identity, &mut rng);
        let mut adam = AdamState::for_layer(&layer);
        let cfg = AdamConfig {
            lr: 0.05,
            ..Default::default()
        };
        for _ in 0..2000 {
            let w = layer.w.get(0, 0);
            let grad = DenseGrad {
                dw: Mat::from_vec(1, 1, vec![2.0 * (w - 3.0)]),
                db: vec![0.0],
            };
            adam.step(&mut layer, &grad, &cfg);
        }
        assert!(
            (layer.w.get(0, 0) - 3.0).abs() < 1e-2,
            "w = {}",
            layer.w.get(0, 0)
        );
    }

    /// A tiny regression problem must reach near-zero loss, exercising the
    /// full forward/backward/update loop.
    #[test]
    fn fits_linear_map() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::xavier(2, 1, Activation::Identity, &mut rng);
        let mut adam = AdamState::for_layer(&layer);
        let cfg = AdamConfig {
            lr: 0.02,
            ..Default::default()
        };
        // Target function: y = 2a - b + 0.5
        let x = Mat::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let targets = [0.5f32, 2.5, -0.5, 1.5];
        let mut final_loss = f32::MAX;
        for _ in 0..4000 {
            let y = layer.forward(&x);
            let mut dy = Mat::zeros(4, 1);
            let mut loss = 0.0;
            for r in 0..4 {
                let d = y.get(r, 0) - targets[r];
                loss += d * d;
                dy.set(r, 0, 2.0 * d);
            }
            final_loss = loss;
            let (_, grad) = layer.backward(&x, &y, dy);
            adam.step(&mut layer, &grad, &cfg);
        }
        assert!(final_loss < 1e-4, "loss {final_loss}");
        assert!((layer.w.get(0, 0) - 2.0).abs() < 0.05);
        assert!((layer.w.get(1, 0) + 1.0).abs() < 0.05);
        assert!((layer.b[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn bias_correction_makes_first_steps_bounded() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = Dense::xavier(1, 1, Activation::Identity, &mut rng);
        let w0 = layer.w.get(0, 0);
        let mut adam = AdamState::for_layer(&layer);
        let cfg = AdamConfig::default();
        let grad = DenseGrad {
            dw: Mat::from_vec(1, 1, vec![1e-4]), // tiny gradient
            db: vec![0.0],
        };
        adam.step(&mut layer, &grad, &cfg);
        // With bias correction, the first step is ≈ lr regardless of
        // gradient magnitude — not lr/sqrt(eps)-sized.
        let step = (layer.w.get(0, 0) - w0).abs();
        assert!(step <= cfg.lr * 1.5, "step {step}");
    }
}
