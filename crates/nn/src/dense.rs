//! Fully connected layers and elementwise activations.

use crate::mat::Mat;
use rand::rngs::StdRng;
use rand::Rng;

/// Elementwise nonlinearities used in the paper's architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// f(x) = x — the Fig. 7 linear-baseline activation.
    Identity,
    /// max(0, x) for hidden layers.
    Relu,
    /// 1/(1+e^-x) for codes and numeric/binary outputs (range [0,1]).
    Sigmoid,
    /// tanh for the categorical auxiliary layer (bounded, zero-centred).
    Tanh,
}

impl Activation {
    /// Applies the activation in place.
    pub fn apply(&self, m: &mut Mat) {
        match self {
            Activation::Identity => {}
            Activation::Relu => m.map_inplace(|v| v.max(0.0)),
            Activation::Sigmoid => m.map_inplace(sigmoid),
            Activation::Tanh => m.map_inplace(f32::tanh),
        }
    }

    /// Multiplies `grad` by the activation derivative, expressed in terms
    /// of the *activated output* `y` (cheap for all four functions).
    pub fn backprop(&self, grad: &mut Mat, y: &Mat) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (g, &v) in grad.data_mut().iter_mut().zip(y.data()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &v) in grad.data_mut().iter_mut().zip(y.data()) {
                    *g *= v * (1.0 - v);
                }
            }
            Activation::Tanh => {
                for (g, &v) in grad.data_mut().iter_mut().zip(y.data()) {
                    *g *= 1.0 - v * v;
                }
            }
        }
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A dense layer `y = x·W + b` with its activation.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, shape (input, output).
    pub w: Mat,
    /// Bias vector, length = output.
    pub b: Vec<f32>,
    /// Activation applied after the affine map.
    pub act: Activation,
}

/// Gradients mirroring a [`Dense`] layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrad {
    /// dL/dW.
    pub dw: Mat,
    /// dL/db.
    pub db: Vec<f32>,
}

impl Dense {
    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(input: usize, output: usize, act: Activation, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (input + output) as f32).sqrt();
        let data = (0..input * output)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Dense {
            w: Mat::from_vec(input, output, data),
            b: vec![0.0; output],
            act,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of scalar parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward pass; returns the activated output.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w);
        y.add_row_vec(&self.b);
        self.act.apply(&mut y);
        y
    }

    /// Backward pass.
    ///
    /// `x` is the layer input, `y` the activated output from forward, and
    /// `dy` the gradient wrt `y`. Returns (dL/dx, parameter gradients).
    pub fn backward(&self, x: &Mat, y: &Mat, mut dy: Mat) -> (Mat, DenseGrad) {
        self.act.backprop(&mut dy, y);
        let dw = x.t_matmul(&dy);
        let db = dy.col_sums();
        let dx = dy.matmul_t(&self.w);
        (dx, DenseGrad { dw, db })
    }

    /// A zeroed gradient accumulator of matching shape.
    pub fn zero_grad(&self) -> DenseGrad {
        DenseGrad {
            dw: Mat::zeros(self.w.rows(), self.w.cols()),
            db: vec![0.0; self.b.len()],
        }
    }
}

impl DenseGrad {
    /// Accumulates another gradient into this one.
    pub fn accumulate(&mut self, other: &DenseGrad) {
        for (a, &b) in self.dw.data_mut().iter_mut().zip(other.dw.data()) {
            *a += b;
        }
        for (a, &b) in self.db.iter_mut().zip(&other.db) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::xavier(3, 2, Activation::Identity, &mut rng);
        layer.b = vec![1.0, -1.0];
        let x = Mat::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input → output equals bias.
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn relu_kills_negative_gradients() {
        let y = Mat::from_vec(1, 3, vec![0.0, 2.0, -0.0]);
        let mut g = Mat::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        Activation::Relu.backprop(&mut g, &y);
        assert_eq!(g.data(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    /// Finite-difference check of the full layer backward pass.
    #[test]
    fn gradients_match_finite_differences() {
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let layer = Dense::xavier(4, 3, act, &mut rng);
            let x = Mat::from_vec(
                2,
                4,
                (0..8).map(|i| (i as f32 * 0.37).sin() * 0.8).collect(),
            );
            // Scalar objective: sum of outputs squared / 2 → dy = y.
            let y = layer.forward(&x);
            let dy = y.clone();
            let (dx, grad) = layer.backward(&x, &y, dy);

            let f = |layer: &Dense, x: &Mat| -> f32 {
                let y = layer.forward(x);
                y.data().iter().map(|v| v * v).sum::<f32>() / 2.0
            };
            let eps = 1e-3f32;

            // Check a scattering of weight entries.
            for &(r, c) in &[(0usize, 0usize), (1, 2), (3, 1)] {
                let mut lp = layer.clone();
                lp.w.set(r, c, lp.w.get(r, c) + eps);
                let mut lm = layer.clone();
                lm.w.set(r, c, lm.w.get(r, c) - eps);
                let num = (f(&lp, &x) - f(&lm, &x)) / (2.0 * eps);
                let ana = grad.dw.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "{act:?} dW[{r},{c}]: numeric {num} vs analytic {ana}"
                );
            }
            // Check input gradients.
            for &(r, c) in &[(0usize, 0usize), (1, 3)] {
                let mut xp = x.clone();
                xp.set(r, c, xp.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, xm.get(r, c) - eps);
                let num = (f(&layer, &xp) - f(&layer, &xm)) / (2.0 * eps);
                let ana = dx.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "{act:?} dX[{r},{c}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn grad_accumulation() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dense::xavier(2, 2, Activation::Identity, &mut rng);
        let mut acc = layer.zero_grad();
        let g = DenseGrad {
            dw: Mat::from_vec(2, 2, vec![1.0; 4]),
            db: vec![2.0, 3.0],
        };
        acc.accumulate(&g);
        acc.accumulate(&g);
        assert_eq!(acc.dw.data(), &[2.0; 4]);
        assert_eq!(acc.db, vec![4.0, 6.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Dense::xavier(5, 7, Activation::Relu, &mut rng);
        assert_eq!(layer.param_count(), 5 * 7 + 7);
    }
}
