//! SIMD micro-kernels behind runtime dispatch (`ds-simd`).
//!
//! Every kernel here exists in up to three variants — AVX2, NEON, and a
//! portable scalar fallback — implementing one *fixed accumulation
//! schedule*, so the selected [`Level`] never changes an output bit
//! (DESIGN.md §3f). Two schedules cover all three products:
//!
//! * **Order-preserving axpy** ([`matmul_rows`], [`t_matmul`]): each
//!   output element accumulates `o[j] += c · b[j]` in strictly ascending
//!   `p` order. Vectorizing along `j` keeps every element's operation
//!   sequence identical (one rounded mul, one rounded add per term — FMA
//!   is deliberately *not* used), so AVX2/NEON/scalar agree bit-for-bit
//!   by construction.
//! * **Lane-group dot** ([`matmul_t_rows`]): a dot product holds
//!   [`ds_simd::LANE_GROUP`] = 8 partial sums — lane `l` accumulates the
//!   terms `p ≡ l (mod 8)` in ascending `p` — then reduces through the
//!   pinned tree in [`reduce_lanes`]. The scalar fallback implements the
//!   same 8 lanes and the same tree, making this schedule the reference
//!   semantics; AVX2 maps it onto one 256-bit register, NEON onto two
//!   128-bit ones, neither changing a single operation.
//!
//! Dispatch reads a [`Level`] chosen by the *caller* (`mat.rs` resolves
//! `ds_simd::active()` once per public entry point, before any `ds-exec`
//! fan-out) so pool workers use the caller's kernel, not their own
//! thread-local view.
//!
//! The `#[target_feature]` functions are `unsafe`, private, and only
//! reachable through the `match` on the runtime-detected level below —
//! pinned by ds-lint's `target-feature-gate` rule.

use ds_simd::Level;

/// Depth (`k`) panel width for the blocked `matmul` kernel: a panel of B
/// (`KC × n` floats) is streamed repeatedly while it is still cache-hot.
const KC: usize = 256;

// ---------------------------------------------------------------------------
// out[row0..row0+r] = A[row0..row0+r] · B   (order-preserving axpy)
// ---------------------------------------------------------------------------

/// Blocked/tiled kernel for `out[row0..row0+r] = A[row0..row0+r] · B`.
///
/// Loop order is `kb → row-quad → p → j`: for a fixed output row, `p`
/// ascends within each `kb` panel and panels ascend, so every element is
/// accumulated in exactly the same order at every [`Level`]. Four output
/// rows share each streamed `B` row (register tiling).
pub(crate) fn matmul_rows(
    level: Level,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    if n == 0 || out_rows.is_empty() {
        return;
    }
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 level is only ever produced by ds-simd after
        // `is_x86_feature_detected!("avx2")` succeeded on this host.
        Level::Avx2 => unsafe { matmul_rows_avx2(a, b, k, n, row0, out_rows) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline; ds-simd only
        // reports the Neon level when compiled for aarch64.
        Level::Neon => unsafe { matmul_rows_neon(a, b, k, n, row0, out_rows) },
        _ => matmul_rows_scalar(a, b, k, n, row0, out_rows),
    }
}

/// Portable reference for [`matmul_rows`] — identical maths, plain Rust.
fn matmul_rows_scalar(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, out_rows: &mut [f32]) {
    let r = out_rows.len() / n;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        // 4-row micro-kernel.
        while i + 4 <= r {
            let quad = &mut out_rows[i * n..(i + 4) * n];
            let (q0, rest) = quad.split_at_mut(n);
            let (q1, rest) = rest.split_at_mut(n);
            let (q2, q3) = rest.split_at_mut(n);
            let a0 = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let a1 = &a[(row0 + i + 1) * k..(row0 + i + 2) * k];
            let a2 = &a[(row0 + i + 2) * k..(row0 + i + 3) * k];
            let a3 = &a[(row0 + i + 3) * k..(row0 + i + 4) * k];
            for p in kb..kend {
                let (c0, c1, c2, c3) = (a0[p], a1[p], a2[p], a3[p]);
                // Adding a `±0.0 · b` term is an exact no-op for finite
                // `b`, so this skip cannot change results — it only
                // exploits ReLU sparsity, like the scalar kernel's skip.
                if c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                let iter = q0
                    .iter_mut()
                    .zip(q1.iter_mut())
                    .zip(q2.iter_mut())
                    .zip(q3.iter_mut())
                    .zip(b_row.iter());
                for ((((o0, o1), o2), o3), &bv) in iter {
                    *o0 += c0 * bv;
                    *o1 += c1 * bv;
                    *o2 += c2 * bv;
                    *o3 += c3 * bv;
                }
            }
            i += 4;
        }
        // Remainder rows, one at a time.
        while i < r {
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (p, &c) in a_row.iter().enumerate().take(kend).skip(kb) {
                if c == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += c * bv;
                }
            }
            i += 1;
        }
        kb = kend;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_rows_avx2(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    use std::arch::x86_64::*;
    let r = out_rows.len() / n;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        while i + 4 <= r {
            let quad = &mut out_rows[i * n..(i + 4) * n];
            let (q0, rest) = quad.split_at_mut(n);
            let (q1, rest) = rest.split_at_mut(n);
            let (q2, q3) = rest.split_at_mut(n);
            let a0 = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let a1 = &a[(row0 + i + 1) * k..(row0 + i + 2) * k];
            let a2 = &a[(row0 + i + 2) * k..(row0 + i + 3) * k];
            let a3 = &a[(row0 + i + 3) * k..(row0 + i + 4) * k];
            // The all-zero-quad skip predicate and the four coefficient
            // loads are j-invariant, so evaluate them once per quad/panel,
            // packing the surviving p's coefficients (and their B-row
            // offsets) contiguously. The same p's are skipped as in the
            // scalar schedule — only the redundant re-evaluation per
            // j-block goes away.
            let mut coef = [0.0f32; 4 * KC];
            let mut boff = [0usize; KC];
            let mut live = 0usize;
            for p in kb..kend {
                let (c0, c1, c2, c3) = (a0[p], a1[p], a2[p], a3[p]);
                if c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                coef[4 * live] = c0;
                coef[4 * live + 1] = c1;
                coef[4 * live + 2] = c2;
                coef[4 * live + 3] = c3;
                boff[live] = p * n;
                live += 1;
            }
            // Register tiling along `j`: the 4×16 output block lives in
            // eight ymm accumulators for the whole `p` panel, so the only
            // per-`p` memory traffic is two B loads and four broadcasts.
            // Per element this is still `mul` then `add` in ascending `p`
            // order (never FMA), and spilling the accumulators to `out`
            // between panels is exact — bit-identical to the scalar
            // schedule.
            let mut j = 0;
            while j + 16 <= n {
                let mut s00 = _mm256_loadu_ps(q0.as_ptr().add(j));
                let mut s01 = _mm256_loadu_ps(q0.as_ptr().add(j + 8));
                let mut s10 = _mm256_loadu_ps(q1.as_ptr().add(j));
                let mut s11 = _mm256_loadu_ps(q1.as_ptr().add(j + 8));
                let mut s20 = _mm256_loadu_ps(q2.as_ptr().add(j));
                let mut s21 = _mm256_loadu_ps(q2.as_ptr().add(j + 8));
                let mut s30 = _mm256_loadu_ps(q3.as_ptr().add(j));
                let mut s31 = _mm256_loadu_ps(q3.as_ptr().add(j + 8));
                for t in 0..live {
                    let cp = coef.as_ptr().add(4 * t);
                    let bp = b.as_ptr().add(boff[t] + j);
                    let bv0 = _mm256_loadu_ps(bp);
                    let bv1 = _mm256_loadu_ps(bp.add(8));
                    let v0 = _mm256_set1_ps(*cp);
                    s00 = _mm256_add_ps(s00, _mm256_mul_ps(v0, bv0));
                    s01 = _mm256_add_ps(s01, _mm256_mul_ps(v0, bv1));
                    let v1 = _mm256_set1_ps(*cp.add(1));
                    s10 = _mm256_add_ps(s10, _mm256_mul_ps(v1, bv0));
                    s11 = _mm256_add_ps(s11, _mm256_mul_ps(v1, bv1));
                    let v2 = _mm256_set1_ps(*cp.add(2));
                    s20 = _mm256_add_ps(s20, _mm256_mul_ps(v2, bv0));
                    s21 = _mm256_add_ps(s21, _mm256_mul_ps(v2, bv1));
                    let v3 = _mm256_set1_ps(*cp.add(3));
                    s30 = _mm256_add_ps(s30, _mm256_mul_ps(v3, bv0));
                    s31 = _mm256_add_ps(s31, _mm256_mul_ps(v3, bv1));
                }
                _mm256_storeu_ps(q0.as_mut_ptr().add(j), s00);
                _mm256_storeu_ps(q0.as_mut_ptr().add(j + 8), s01);
                _mm256_storeu_ps(q1.as_mut_ptr().add(j), s10);
                _mm256_storeu_ps(q1.as_mut_ptr().add(j + 8), s11);
                _mm256_storeu_ps(q2.as_mut_ptr().add(j), s20);
                _mm256_storeu_ps(q2.as_mut_ptr().add(j + 8), s21);
                _mm256_storeu_ps(q3.as_mut_ptr().add(j), s30);
                _mm256_storeu_ps(q3.as_mut_ptr().add(j + 8), s31);
                j += 16;
            }
            // One-vector block for 8 ≤ remaining < 16 columns.
            while j + 8 <= n {
                let mut s0 = _mm256_loadu_ps(q0.as_ptr().add(j));
                let mut s1 = _mm256_loadu_ps(q1.as_ptr().add(j));
                let mut s2 = _mm256_loadu_ps(q2.as_ptr().add(j));
                let mut s3 = _mm256_loadu_ps(q3.as_ptr().add(j));
                for t in 0..live {
                    let cp = coef.as_ptr().add(4 * t);
                    let bv = _mm256_loadu_ps(b.as_ptr().add(boff[t] + j));
                    s0 = _mm256_add_ps(s0, _mm256_mul_ps(_mm256_set1_ps(*cp), bv));
                    s1 = _mm256_add_ps(s1, _mm256_mul_ps(_mm256_set1_ps(*cp.add(1)), bv));
                    s2 = _mm256_add_ps(s2, _mm256_mul_ps(_mm256_set1_ps(*cp.add(2)), bv));
                    s3 = _mm256_add_ps(s3, _mm256_mul_ps(_mm256_set1_ps(*cp.add(3)), bv));
                }
                _mm256_storeu_ps(q0.as_mut_ptr().add(j), s0);
                _mm256_storeu_ps(q1.as_mut_ptr().add(j), s1);
                _mm256_storeu_ps(q2.as_mut_ptr().add(j), s2);
                _mm256_storeu_ps(q3.as_mut_ptr().add(j), s3);
                j += 8;
            }
            // Scalar tail columns, same p-ascending order per element.
            while j < n {
                let (mut s0, mut s1) = (q0[j], q1[j]);
                let (mut s2, mut s3) = (q2[j], q3[j]);
                for t in 0..live {
                    let bv = b[boff[t] + j];
                    s0 += coef[4 * t] * bv;
                    s1 += coef[4 * t + 1] * bv;
                    s2 += coef[4 * t + 2] * bv;
                    s3 += coef[4 * t + 3] * bv;
                }
                q0[j] = s0;
                q1[j] = s1;
                q2[j] = s2;
                q3[j] = s3;
                j += 1;
            }
            i += 4;
        }
        while i < r {
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (p, &c) in a_row.iter().enumerate().take(kend).skip(kb) {
                if c == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                axpy_avx2_body(o_row, c, b_row);
            }
            i += 1;
        }
        kb = kend;
    }
}

/// `o[j] += c · b[j]` over a whole row, AVX2 body. `#[inline(always)]`
/// into the `#[target_feature]` callers above/below — never called from
/// non-AVX2 code.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn axpy_avx2_body(o: &mut [f32], c: f32, b: &[f32]) {
    use std::arch::x86_64::*;
    let n = o.len().min(b.len());
    let cv = _mm256_set1_ps(c);
    let mut j = 0;
    while j + 8 <= n {
        let bv = _mm256_loadu_ps(b.as_ptr().add(j));
        let ov = _mm256_loadu_ps(o.as_ptr().add(j));
        _mm256_storeu_ps(
            o.as_mut_ptr().add(j),
            _mm256_add_ps(ov, _mm256_mul_ps(cv, bv)),
        );
        j += 8;
    }
    while j < n {
        o[j] += c * b[j];
        j += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn matmul_rows_neon(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    use std::arch::aarch64::*;
    let r = out_rows.len() / n;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        while i + 4 <= r {
            let quad = &mut out_rows[i * n..(i + 4) * n];
            let (q0, rest) = quad.split_at_mut(n);
            let (q1, rest) = rest.split_at_mut(n);
            let (q2, q3) = rest.split_at_mut(n);
            let a0 = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let a1 = &a[(row0 + i + 1) * k..(row0 + i + 2) * k];
            let a2 = &a[(row0 + i + 2) * k..(row0 + i + 3) * k];
            let a3 = &a[(row0 + i + 3) * k..(row0 + i + 4) * k];
            for p in kb..kend {
                let (c0, c1, c2, c3) = (a0[p], a1[p], a2[p], a3[p]);
                if c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                let (v0, v1) = (vdupq_n_f32(c0), vdupq_n_f32(c1));
                let (v2, v3) = (vdupq_n_f32(c2), vdupq_n_f32(c3));
                let mut j = 0;
                // `mul` then `add` — never a fused multiply-accumulate.
                while j + 4 <= n {
                    let bv = vld1q_f32(b_row.as_ptr().add(j));
                    let t0 = vld1q_f32(q0.as_ptr().add(j));
                    vst1q_f32(q0.as_mut_ptr().add(j), vaddq_f32(t0, vmulq_f32(v0, bv)));
                    let t1 = vld1q_f32(q1.as_ptr().add(j));
                    vst1q_f32(q1.as_mut_ptr().add(j), vaddq_f32(t1, vmulq_f32(v1, bv)));
                    let t2 = vld1q_f32(q2.as_ptr().add(j));
                    vst1q_f32(q2.as_mut_ptr().add(j), vaddq_f32(t2, vmulq_f32(v2, bv)));
                    let t3 = vld1q_f32(q3.as_ptr().add(j));
                    vst1q_f32(q3.as_mut_ptr().add(j), vaddq_f32(t3, vmulq_f32(v3, bv)));
                    j += 4;
                }
                while j < n {
                    let bv = b_row[j];
                    q0[j] += c0 * bv;
                    q1[j] += c1 * bv;
                    q2[j] += c2 * bv;
                    q3[j] += c3 * bv;
                    j += 1;
                }
            }
            i += 4;
        }
        while i < r {
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (p, &c) in a_row.iter().enumerate().take(kend).skip(kb) {
                if c == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                axpy_neon_body(o_row, c, b_row);
            }
            i += 1;
        }
        kb = kend;
    }
}

/// NEON twin of [`axpy_avx2_body`].
#[cfg(target_arch = "aarch64")]
#[inline(always)]
unsafe fn axpy_neon_body(o: &mut [f32], c: f32, b: &[f32]) {
    use std::arch::aarch64::*;
    let n = o.len().min(b.len());
    let cv = vdupq_n_f32(c);
    let mut j = 0;
    while j + 4 <= n {
        let bv = vld1q_f32(b.as_ptr().add(j));
        let ov = vld1q_f32(o.as_ptr().add(j));
        vst1q_f32(o.as_mut_ptr().add(j), vaddq_f32(ov, vmulq_f32(cv, bv)));
        j += 4;
    }
    while j < n {
        o[j] += c * b[j];
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// out[row0..row0+r] = A[row0..row0+r] · Bᵀ   (lane-group dot)
// ---------------------------------------------------------------------------

/// The pinned reduction tree closing every lane-group dot product:
///
/// ```text
/// s = ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
/// ```
///
/// This is the natural AVX2 shape (`extractf128`-add, `movehl`-add,
/// `shuffle`-add); the scalar and NEON paths execute the same five adds
/// in the same association, so the tree is part of the schedule, not an
/// implementation detail.
#[inline]
fn reduce_lanes(l: [f32; 8]) -> f32 {
    let q0 = l[0] + l[4];
    let q1 = l[1] + l[5];
    let q2 = l[2] + l[6];
    let q3 = l[3] + l[7];
    (q0 + q2) + (q1 + q3)
}

/// Lane-group partial sums of `Σ a[p]·x[p]`: lane `l` accumulates the
/// terms `p ≡ l (mod 8)` in ascending `p`; the tail (`len % 8` terms)
/// lands in lanes `0..len%8` only — untouched lanes are *not* folded
/// with `+0.0`, which would quietly turn a `-0.0` partial sum positive.
#[inline]
fn dot_lanes_scalar(a: &[f32], x: &[f32]) -> [f32; 8] {
    let len = a.len().min(x.len());
    let full = len - len % 8;
    let mut lanes = [0.0f32; 8];
    let mut p = 0;
    while p < full {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += a[p + l] * x[p + l];
        }
        p += 8;
    }
    for l in 0..(len - full) {
        lanes[l] += a[full + l] * x[full + l];
    }
    lanes
}

/// Tiled kernel for `out[row0..row0+r] = A[row0..row0+r] · Bᵀ`.
///
/// Every output element is an independent lane-group dot product (8
/// ascending partial sums + the [`reduce_lanes`] tree) — the same
/// schedule at every [`Level`], so results are bit-identical across
/// scalar/AVX2/NEON and any thread count.
pub(crate) fn matmul_t_rows(
    level: Level,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    if n == 0 || out_rows.is_empty() {
        return;
    }
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only reported after runtime AVX2 detection.
        Level::Avx2 => unsafe { matmul_t_rows_avx2(a, b, k, n, row0, out_rows) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64 builds.
        Level::Neon => unsafe { matmul_t_rows_neon(a, b, k, n, row0, out_rows) },
        _ => matmul_t_rows_scalar(a, b, k, n, row0, out_rows),
    }
}

/// Portable reference for [`matmul_t_rows`]: the lane-group schedule in
/// plain Rust. `B` rows are the outer loop so each stays cache-hot
/// across the chunk's `A` rows.
fn matmul_t_rows_scalar(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    let r = out_rows.len() / n;
    for j in 0..n {
        let b_row = &b[j * k..(j + 1) * k];
        for i in 0..r {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            out_rows[i * n + j] = reduce_lanes(dot_lanes_scalar(a_row, b_row));
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_t_rows_avx2(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    use std::arch::x86_64::*;
    let r = out_rows.len() / n;
    let full = k - k % 8;
    for j in 0..n {
        let b_row = &b[j * k..(j + 1) * k];
        for i in 0..r {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            // Lane l of `acc` is exactly `lanes[l]` of the scalar
            // schedule: the lanewise mul+add touches each partial sum
            // with the same rounded ops in the same ascending-p order.
            let mut acc = _mm256_setzero_ps();
            let mut p = 0;
            while p < full {
                let av = _mm256_loadu_ps(a_row.as_ptr().add(p));
                let xv = _mm256_loadu_ps(b_row.as_ptr().add(p));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(av, xv));
                p += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
            for l in 0..(k - full) {
                lanes[l] += a_row[full + l] * b_row[full + l];
            }
            out_rows[i * n + j] = reduce_lanes(lanes);
        }
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn matmul_t_rows_neon(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    use std::arch::aarch64::*;
    let r = out_rows.len() / n;
    let full = k - k % 8;
    for j in 0..n {
        let b_row = &b[j * k..(j + 1) * k];
        for i in 0..r {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            // Two q-registers hold the 8-lane group: acc_lo = lanes 0..4,
            // acc_hi = lanes 4..8 — same partial sums as scalar/AVX2.
            let mut acc_lo = vdupq_n_f32(0.0);
            let mut acc_hi = vdupq_n_f32(0.0);
            let mut p = 0;
            while p < full {
                let a_lo = vld1q_f32(a_row.as_ptr().add(p));
                let x_lo = vld1q_f32(b_row.as_ptr().add(p));
                acc_lo = vaddq_f32(acc_lo, vmulq_f32(a_lo, x_lo));
                let a_hi = vld1q_f32(a_row.as_ptr().add(p + 4));
                let x_hi = vld1q_f32(b_row.as_ptr().add(p + 4));
                acc_hi = vaddq_f32(acc_hi, vmulq_f32(a_hi, x_hi));
                p += 8;
            }
            let mut lanes = [0.0f32; 8];
            vst1q_f32(lanes.as_mut_ptr(), acc_lo);
            vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
            for l in 0..(k - full) {
                lanes[l] += a_row[full + l] * b_row[full + l];
            }
            out_rows[i * n + j] = reduce_lanes(lanes);
        }
    }
}

// ---------------------------------------------------------------------------
// out = Aᵀ · B   (order-preserving axpy, serial)
// ---------------------------------------------------------------------------

/// Kernel for `out = Aᵀ · B` (`A` is `k×m`, `B` is `k×n`, `out` is
/// `m×n`, all row-major). Each output element accumulates in ascending
/// `p` order with one rounded mul + add per term — bit-identical across
/// levels, like [`matmul_rows`].
pub(crate) fn t_matmul(
    level: Level,
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    out: &mut [f32],
) {
    if m == 0 || n == 0 {
        return;
    }
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only reported after runtime AVX2 detection.
        Level::Avx2 => unsafe { t_matmul_avx2(a, b, k, m, n, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64 builds.
        Level::Neon => unsafe { t_matmul_neon(a, b, k, m, n, out) },
        _ => t_matmul_scalar(a, b, k, m, n, out),
    }
}

/// Portable reference for [`t_matmul`].
fn t_matmul_scalar(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &c) in a_row.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += c * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn t_matmul_avx2(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &c) in a_row.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            axpy_avx2_body(&mut out[i * n..(i + 1) * n], c, b_row);
        }
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn t_matmul_neon(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &c) in a_row.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            axpy_neon_body(&mut out[i * n..(i + 1) * n], c, b_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reduction tree must match its documented association exactly.
    #[test]
    fn reduce_lanes_is_the_pinned_tree() {
        let l = [1.0f32, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let expect = ((1.0f32 + 16.0) + (4.0 + 64.0)) + ((2.0 + 32.0) + (8.0 + 128.0));
        assert_eq!(reduce_lanes(l), expect);
    }

    /// Tail terms land only in lanes `0..k % 8`, in ascending order —
    /// they are never spread across the high lanes or zero-padded into
    /// a ninth group.
    #[test]
    fn dot_lanes_tail_lands_in_low_lanes_only() {
        // k = 11: one full group + a 3-term tail owned by lanes 0..3.
        let a: Vec<f32> = (0..11).map(|i| (i + 1) as f32).collect();
        let x = vec![1.0f32; 11];
        let lanes = dot_lanes_scalar(&a, &x);
        assert_eq!(lanes[0], 1.0 + 9.0);
        assert_eq!(lanes[1], 2.0 + 10.0);
        assert_eq!(lanes[2], 3.0 + 11.0);
        for l in 3..8 {
            assert_eq!(lanes[l], (l + 1) as f32, "lane {l} must be untouched");
        }
    }

    /// SIMD variants must agree with the scalar schedule bit-for-bit on
    /// the live host level (vacuous on scalar-only hosts).
    #[test]
    fn host_level_matches_scalar_schedule() {
        let level = ds_simd::detected();
        let (r, k, n) = (7, 29, 13); // deliberately misaligned everywhere
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let a: Vec<f32> = (0..r * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| next()).collect();

        let mut simd = vec![0.0f32; r * n];
        let mut scalar = vec![0.0f32; r * n];
        matmul_rows(level, &a, &b, k, n, 0, &mut simd);
        matmul_rows(Level::Scalar, &a, &b, k, n, 0, &mut scalar);
        assert_eq!(simd, scalar, "matmul_rows");

        simd.fill(0.0);
        scalar.fill(0.0);
        matmul_t_rows(level, &a, &bt, k, n, 0, &mut simd);
        matmul_t_rows(Level::Scalar, &a, &bt, k, n, 0, &mut scalar);
        assert_eq!(simd, scalar, "matmul_t_rows");

        // Aᵀ·B with A as k×m: reuse `a` as 29-row × 7-col.
        let (tk, tm, tn) = (r, k, n); // 7×29ᵀ is 29×7 … keep shapes small
        let a2: Vec<f32> = (0..tk * tm).map(|_| next()).collect();
        let b2: Vec<f32> = (0..tk * tn).map(|_| next()).collect();
        let mut o_simd = vec![0.0f32; tm * tn];
        let mut o_scalar = vec![0.0f32; tm * tn];
        t_matmul(level, &a2, &b2, tk, tm, tn, &mut o_simd);
        t_matmul(Level::Scalar, &a2, &b2, tk, tm, tn, &mut o_scalar);
        assert_eq!(o_simd, o_scalar, "t_matmul");
    }
}
