//! Weight serialization: the materialized decoder of §6.1.
//!
//! Only the decoder half of each expert is stored ("the encoder is required
//! exclusively during the compression process"). The format is a compact
//! little-endian layout — spec header, then per-layer dims + f32 weights.
//! The paper's final gzip step (§6.1) is applied by the caller (`ds-core`
//! runs the exported bytes through its gzip-like codec); this module stays
//! dependency-free.

use crate::autoencoder::{Autoencoder, Head, ModelSpec};
use crate::dense::{Activation, Dense};
use crate::mat::Mat;
use crate::moe::MoeAutoencoder;
use crate::{NnError, Result};

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Result<u32> {
        if self.pos + 4 > self.buf.len() {
            return Err(NnError::Corrupt("truncated weight stream"));
        }
        let v = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        Ok(v)
    }

    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
}

fn write_spec(out: &mut Vec<u8>, spec: &ModelSpec) {
    push_u32(out, spec.heads.len() as u32);
    for h in &spec.heads {
        match h {
            Head::Numeric => push_u32(out, 0),
            Head::Binary => push_u32(out, 1),
            Head::Categorical { card } => {
                push_u32(out, 2);
                push_u32(out, *card as u32);
            }
        }
    }
    push_u32(out, spec.code_size as u32);
    push_u32(out, spec.hidden as u32);
    push_u32(out, u32::from(spec.linear_single_layer));
    push_f32(out, spec.numeric_loss_weight);
    push_u32(out, spec.aux_width as u32);
}

fn read_spec(r: &mut Reader<'_>) -> Result<ModelSpec> {
    let n = r.u32()? as usize;
    if n > 1 << 20 {
        return Err(NnError::Corrupt("implausible head count"));
    }
    let mut heads = Vec::with_capacity(n);
    for _ in 0..n {
        heads.push(match r.u32()? {
            0 => Head::Numeric,
            1 => Head::Binary,
            2 => Head::Categorical {
                card: r.u32()? as usize,
            },
            _ => return Err(NnError::Corrupt("unknown head tag")),
        });
    }
    let code_size = r.u32()? as usize;
    let hidden = r.u32()? as usize;
    let linear_single_layer = r.u32()? != 0;
    let numeric_loss_weight = r.f32()?;
    let aux_width = r.u32()? as usize;
    Ok(ModelSpec {
        heads,
        code_size,
        hidden,
        linear_single_layer,
        numeric_loss_weight,
        aux_width,
    })
}

fn write_layer(out: &mut Vec<u8>, layer: &Dense) {
    push_u32(out, layer.w.rows() as u32);
    push_u32(out, layer.w.cols() as u32);
    push_u32(out, activation_tag(layer.act));
    for &v in layer.w.data() {
        push_f32(out, v);
    }
    for &v in &layer.b {
        push_f32(out, v);
    }
}

fn read_layer(r: &mut Reader<'_>) -> Result<Dense> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    // Zero dims are checked explicitly: `rows == 0` would let an
    // arbitrary `cols` through the product bound (and vice versa), and
    // no real layer is empty.
    if rows == 0 || cols == 0 || rows.checked_mul(cols).is_none_or(|n| n > 1 << 26) {
        return Err(NnError::Corrupt("implausible layer size"));
    }
    let act = activation_from_tag(r.u32()?)?;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(r.f32()?);
    }
    let mut b = Vec::with_capacity(cols);
    for _ in 0..cols {
        b.push(r.f32()?);
    }
    Ok(Dense {
        w: Mat::from_vec(rows, cols, data),
        b,
        act,
    })
}

fn activation_tag(a: Activation) -> u32 {
    match a {
        Activation::Identity => 0,
        Activation::Relu => 1,
        Activation::Sigmoid => 2,
        Activation::Tanh => 3,
    }
}

fn activation_from_tag(tag: u32) -> Result<Activation> {
    Ok(match tag {
        0 => Activation::Identity,
        1 => Activation::Relu,
        2 => Activation::Sigmoid,
        3 => Activation::Tanh,
        _ => return Err(NnError::Corrupt("unknown activation tag")),
    })
}

/// Serializes the decoder halves of every expert in a mixture.
pub fn export_decoders(model: &MoeAutoencoder) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"DSNN");
    push_u32(&mut out, model.n_experts() as u32);
    let spec = model.experts()[0].spec();
    write_spec(&mut out, spec);
    for expert in model.experts() {
        let layers = expert.decoder_layers();
        push_u32(&mut out, layers.len() as u32);
        for layer in layers {
            write_layer(&mut out, layer);
        }
    }
    out
}

/// Reconstructs a decoder-only mixture from [`export_decoders`] output.
pub fn import_decoders(bytes: &[u8]) -> Result<MoeAutoencoder> {
    if bytes.len() < 8 || &bytes[..4] != b"DSNN" {
        return Err(NnError::Corrupt("bad magic"));
    }
    let mut r = Reader { buf: bytes, pos: 4 };
    let n_experts = r.u32()? as usize;
    if n_experts == 0 || n_experts > 4096 {
        return Err(NnError::Corrupt("implausible expert count"));
    }
    let spec = read_spec(&mut r)?;
    let mut experts = Vec::with_capacity(n_experts);
    for _ in 0..n_experts {
        let n_layers = r.u32()? as usize;
        if n_layers > 64 {
            return Err(NnError::Corrupt("implausible layer count"));
        }
        let layers = (0..n_layers)
            .map(|_| read_layer(&mut r))
            .collect::<Result<Vec<_>>>()?;
        // ds-lint: allow(tainted-alloc) -- from_decoder_parts runs spec.validate() before any spec-sized allocation; validate()-style gates are outside the taint model (DESIGN.md §3h)
        experts.push(Autoencoder::from_decoder_parts(spec.clone(), layers)?);
    }
    Ok(MoeAutoencoder::from_experts(experts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moe::MoeConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_model(n_experts: usize) -> (MoeAutoencoder, Mat, Vec<Vec<u32>>) {
        let mut rng = StdRng::seed_from_u64(20);
        let n = 64;
        let mut x = Mat::zeros(n, 3);
        let mut cat = vec![0u32; n];
        for r in 0..n {
            let v: f32 = rng.gen();
            x.set(r, 0, v);
            cat[r] = (v * 2.999) as u32;
            x.set(r, 1, cat[r] as f32 / 2.0);
            x.set(r, 2, if v > 0.4 { 1.0 } else { 0.0 });
        }
        let spec = ModelSpec::with_defaults(
            vec![Head::Numeric, Head::Categorical { card: 3 }, Head::Binary],
            2,
        );
        let cfg = MoeConfig {
            n_experts,
            max_epochs: 5,
            seed: 21,
            ..Default::default()
        };
        let (model, _) = MoeAutoencoder::train(&spec, &x, &[cat.clone()], &cfg).unwrap();
        (model, x, vec![cat])
    }

    #[test]
    fn decoder_roundtrip_reproduces_outputs_exactly() {
        for n_experts in [1, 3] {
            let (model, x, _) = trained_model(n_experts);
            let bytes = export_decoders(&model);
            let restored = import_decoders(&bytes).unwrap();
            assert_eq!(restored.n_experts(), n_experts);
            for e in 0..n_experts {
                let codes = model.encode(e, &x).unwrap();
                let a = model.decode(e, &codes).unwrap();
                let b = restored.decode(e, &codes).unwrap();
                assert_eq!(a.simple.data(), b.simple.data());
                for (pa, pb) in a.cat_probs.iter().zip(&b.cat_probs) {
                    assert_eq!(pa.data(), pb.data());
                }
            }
        }
    }

    #[test]
    fn corrupt_streams_rejected() {
        let (model, _, _) = trained_model(1);
        let bytes = export_decoders(&model);
        assert!(import_decoders(&bytes[1..]).is_err()); // bad magic
        assert!(import_decoders(&bytes[..bytes.len() - 3]).is_err()); // truncated
        assert!(import_decoders(b"DSNN").is_err()); // header only
        let mut bad = bytes.clone();
        bad[5] = 0xFF; // absurd expert count
        assert!(import_decoders(&bad).is_err());
    }

    #[test]
    fn export_size_tracks_parameters() {
        let (one, _, _) = trained_model(1);
        let (three, _, _) = trained_model(3);
        let s1 = export_decoders(&one).len();
        let s3 = export_decoders(&three).len();
        // Three experts ≈ 3× the decoder weights (plus a shared header).
        assert!(s3 > s1 * 2, "{s3} vs {s1}");
        assert!(s3 < s1 * 4);
    }

    #[test]
    fn linear_variant_roundtrips() {
        let mut rng = StdRng::seed_from_u64(30);
        let spec = ModelSpec {
            linear_single_layer: true,
            ..ModelSpec::with_defaults(vec![Head::Numeric, Head::Numeric], 1)
        };
        let x = Mat::from_vec(4, 2, vec![0.1, 0.9, 0.5, 0.5, 0.2, 0.8, 0.7, 0.3]);
        let cfg = MoeConfig {
            n_experts: 1,
            max_epochs: 2,
            seed: 31,
            ..Default::default()
        };
        let (model, _) = MoeAutoencoder::train(&spec, &x, &[], &cfg).unwrap();
        let bytes = export_decoders(&model);
        let restored = import_decoders(&bytes).unwrap();
        let codes = model.encode(0, &x).unwrap();
        assert_eq!(
            model.decode(0, &codes).unwrap().simple.data(),
            restored.decode(0, &codes).unwrap().simple.data()
        );
        let _ = rng.gen::<f32>();
    }
}
