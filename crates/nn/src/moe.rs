//! Sparsely-gated mixture of experts (§5.2–§5.3 of the paper).
//!
//! A *gate* network assigns each tuple to the expert (autoencoder) best
//! suited to it. Training is end-to-end: every batch is fed to all experts
//! concurrently; the total loss is the gate-weighted sum Σₑ gₑ(x)·Lₑ(x),
//! so backpropagated errors update both the responsible experts (scaled by
//! their gate probability) and the gate itself, which "might choose to
//! reassign the tuple to a different expert" (§5.3). At inference the gate
//! routes hard: each tuple goes to its argmax expert only.

use crate::adam::{AdamConfig, AdamState};
use crate::autoencoder::{Autoencoder, ModelSpec};
use crate::dense::{Activation, Dense, DenseGrad};
use crate::mat::Mat;
use crate::{NnError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Minibatch rows per gradient task. Fixed by this constant alone — never
/// by the worker count — so the (expert × chunk) task grid and the
/// chunk-ordered gradient reduction produce bit-identical results for any
/// `DS_THREADS` setting.
pub const GRAD_CHUNK_ROWS: usize = 32;

/// Data-parallel [`Autoencoder::train_pass`]: splits the batch into fixed
/// row chunks of `chunk_rows`, computes per-chunk gradients (potentially
/// concurrently via `ds-exec`), and reduces them **in ascending chunk
/// order** into one gradient set plus the per-tuple losses in row order.
///
/// Per-tuple losses are bit-identical to an unchunked pass (each row's
/// forward pass is independent). Gradient sums associate per chunk, which
/// is a deterministic function of `chunk_rows` and the batch size only.
pub fn train_pass_data_parallel(
    expert: &Autoencoder,
    x: &Mat,
    cat_targets: &[Vec<u32>],
    row_weights: Option<&[f32]>,
    chunk_rows: usize,
) -> Result<(Vec<DenseGrad>, Vec<f32>)> {
    let b = x.rows();
    let chunk_rows = chunk_rows.max(1);
    if b <= chunk_rows {
        return expert.train_pass(x, cat_targets, row_weights);
    }
    if let Some(w) = row_weights {
        if w.len() != b {
            return Err(NnError::ShapeMismatch("train: row weight length"));
        }
    }
    for t in cat_targets {
        if t.len() != b {
            return Err(NnError::ShapeMismatch("train: cat target length"));
        }
    }
    ds_obs::counter(
        "nn.train_chunks",
        ds_exec::chunk_count(b, chunk_rows) as u64,
    );
    let parts = ds_exec::parallel_map_chunks(b, chunk_rows, |_, range| {
        let xc = x.slice_rows(range.start, range.end);
        let cat_c: Vec<Vec<u32>> = cat_targets
            .iter()
            .map(|t| t[range.clone()].to_vec())
            .collect();
        let wc = row_weights.map(|w| &w[range]);
        expert.train_pass(&xc, &cat_c, wc)
    });
    reduce_chunk_grads(parts)
}

/// Folds per-chunk `(grads, losses)` results in ascending chunk order.
fn reduce_chunk_grads(
    parts: Vec<Result<(Vec<DenseGrad>, Vec<f32>)>>,
) -> Result<(Vec<DenseGrad>, Vec<f32>)> {
    let mut acc: Option<(Vec<DenseGrad>, Vec<f32>)> = None;
    for part in parts {
        let (grads, losses) = part?;
        match &mut acc {
            None => acc = Some((grads, losses)),
            Some((g_acc, l_acc)) => {
                for (a, g) in g_acc.iter_mut().zip(&grads) {
                    a.accumulate(g);
                }
                l_acc.extend_from_slice(&losses);
            }
        }
    }
    acc.ok_or(NnError::InvalidSpec("empty training batch"))
}

/// Training hyperparameters for the mixture.
#[derive(Debug, Clone)]
pub struct MoeConfig {
    /// Number of experts — hyperparameter #2 of §5.4.
    pub n_experts: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Stop when the relative loss improvement over an epoch falls below
    /// this (the paper's "until convergence").
    pub tol: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Multiplicative per-epoch learning-rate decay (1.0 = constant).
    pub lr_decay: f32,
    /// RNG seed (weights, shuffling).
    pub seed: u64,
}

impl Default for MoeConfig {
    fn default() -> Self {
        MoeConfig {
            n_experts: 1,
            batch_size: 128,
            max_epochs: 60,
            tol: 1e-3,
            lr: 2e-3,
            lr_decay: 1.0,
            seed: 0,
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean gate-weighted loss after each epoch.
    pub epoch_losses: Vec<f32>,
    /// Number of epochs actually run.
    pub epochs_run: usize,
}

/// The gate network: input → hidden(ReLU) → expert logits → softmax.
#[derive(Debug, Clone)]
pub struct Gate {
    l1: Dense,
    l2: Dense,
}

impl Gate {
    fn new(input_dim: usize, n_experts: usize, rng: &mut StdRng) -> Self {
        let h = (input_dim * 2).max(4);
        Gate {
            l1: Dense::xavier(input_dim, h, Activation::Relu, rng),
            l2: Dense::xavier(h, n_experts, Activation::Identity, rng),
        }
    }

    /// Softmax expert probabilities for a batch (B × E).
    pub fn probabilities(&self, x: &Mat) -> Mat {
        let h = self.l1.forward(x);
        let logits = self.l2.forward(&h);
        softmax_rows(&logits)
    }

    /// Hard argmax assignment per tuple.
    pub fn assign(&self, x: &Mat) -> Vec<usize> {
        let g = self.probabilities(x);
        (0..g.rows())
            .map(|r| {
                let row = g.row(r);
                (0..row.len())
                    .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                    .expect("at least one expert")
            })
            .collect()
    }

    /// One gradient step: given per-tuple per-expert losses `l` (B × E) and
    /// the already-computed probabilities `g`, minimize Σ gₑ·Lₑ.
    fn train_step(
        &mut self,
        x: &Mat,
        g: &Mat,
        losses: &Mat,
        states: &mut (AdamState, AdamState),
        cfg: &AdamConfig,
    ) {
        let (b, e) = (g.rows(), g.cols());
        // d(Σ g·L)/d logits = g ⊙ (L − Σ g·L) per row (softmax Jacobian).
        let mut dlogits = Mat::zeros(b, e);
        for r in 0..b {
            let mut mean = 0.0;
            for c in 0..e {
                mean += g.get(r, c) * losses.get(r, c);
            }
            for c in 0..e {
                dlogits.set(r, c, g.get(r, c) * (losses.get(r, c) - mean));
            }
        }
        let h = self.l1.forward(x);
        let logits = self.l2.forward(&h);
        let (dh, g2) = self.l2.backward(&h, &logits, dlogits);
        let (_, g1) = self.l1.backward(x, &h, dh);
        states.0.step(&mut self.l1, &g1, cfg);
        states.1.step(&mut self.l2, &g2, cfg);
    }
}

/// A trained mixture of expert autoencoders (a single expert degenerates
/// to a plain autoencoder with no gate).
#[derive(Debug, Clone)]
pub struct MoeAutoencoder {
    experts: Vec<Autoencoder>,
    gate: Option<Gate>,
}

impl MoeAutoencoder {
    /// Trains the mixture end-to-end on `x` (rows already preprocessed to
    /// [0,1]) with `cat_targets` (per categorical head, dictionary codes).
    pub fn train(
        spec: &ModelSpec,
        x: &Mat,
        cat_targets: &[Vec<u32>],
        cfg: &MoeConfig,
    ) -> Result<(Self, TrainReport)> {
        if cfg.n_experts == 0 {
            return Err(NnError::InvalidSpec("need at least one expert"));
        }
        if x.rows() == 0 {
            return Err(NnError::InvalidSpec("empty training set"));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut experts: Vec<Autoencoder> = (0..cfg.n_experts)
            .map(|_| Autoencoder::new(spec.clone(), &mut rng))
            .collect::<Result<_>>()?;
        let mut gate = if cfg.n_experts > 1 {
            Some(Gate::new(spec.input_dim(), cfg.n_experts, &mut rng))
        } else {
            None
        };

        let mut adam_cfg = AdamConfig {
            lr: cfg.lr,
            ..Default::default()
        };
        let mut expert_states: Vec<Vec<AdamState>> = experts
            .iter()
            .map(|e| e.layers().iter().map(|l| AdamState::for_layer(l)).collect())
            .collect();
        let mut gate_states = gate
            .as_ref()
            .map(|g| (AdamState::for_layer(&g.l1), AdamState::for_layer(&g.l2)));

        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut report = TrainReport::default();
        let mut prev_loss = f32::MAX;
        let mut stall_epochs = 0usize;

        for epoch in 0..cfg.max_epochs {
            let _ep_span = ds_obs::span_at("epoch", epoch as u64);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            // Telemetry accumulators (ds-obs only): gate-weighted expert
            // utilization, mean gate entropy, and mean pre-clip grad norm.
            // All derive from the deterministic training math, so the
            // resulting series are thread-count-invariant.
            let obs_on = ds_obs::enabled();
            let mut util = vec![0.0f64; experts.len()];
            let mut entropy_sum = 0.0f64;
            let mut rows_seen = 0usize;
            let mut grad_norm_sum = 0.0f64;
            let mut grad_norm_n = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let xb = x.take_rows(chunk);
                let cat_b: Vec<Vec<u32>> = cat_targets
                    .iter()
                    .map(|t| chunk.iter().map(|&i| t[i]).collect())
                    .collect();

                let g = match &gate {
                    Some(gate) => gate.probabilities(&xb),
                    None => Mat::from_vec(xb.rows(), 1, vec![1.0; xb.rows()]),
                };
                if obs_on {
                    for r in 0..xb.rows() {
                        for e in 0..experts.len() {
                            let p = f64::from(g.get(r, e));
                            util[e] += p;
                            if p > 0.0 {
                                entropy_sum -= p * p.ln();
                            }
                        }
                    }
                    rows_seen += xb.rows();
                }

                // All experts see the batch (the gate masks via weights).
                // The gate weights are normalized to unit mean per expert:
                // otherwise a near-uniform gate scales every expert's
                // gradient by ~1/E and the mixture trains E× slower than a
                // single model (gradient dilution).
                let expert_weights: Vec<Vec<f32>> = (0..experts.len())
                    .map(|e| {
                        let mut weights: Vec<f32> = (0..xb.rows()).map(|r| g.get(r, e)).collect();
                        let mean: f32 = weights.iter().sum::<f32>() / weights.len() as f32;
                        if mean > 1e-6 {
                            let inv = 1.0 / mean;
                            for w in &mut weights {
                                *w *= inv;
                            }
                        }
                        weights
                    })
                    .collect();
                // Every (expert, row-chunk) pair is one task on the shared
                // ds-exec pool — finer-grained than the old one-thread-per-
                // expert scope::spawn, with no per-batch thread spawning and
                // no silent serial fallback when available_parallelism()
                // errs (ds-exec resolves DS_THREADS → OS → explicit default).
                // Chunk boundaries and the per-expert chunk-ordered gradient
                // reduction depend only on the batch size, so training is
                // bit-identical for any thread count.
                let rows = xb.rows();
                let n_chunks = ds_exec::chunk_count(rows, GRAD_CHUNK_ROWS);
                let chunk_results: Vec<Result<(Vec<DenseGrad>, Vec<f32>)>> =
                    ds_exec::parallel_map(experts.len() * n_chunks, |t| {
                        let (e, c) = (t / n_chunks, t % n_chunks);
                        let lo = c * GRAD_CHUNK_ROWS;
                        let hi = (lo + GRAD_CHUNK_ROWS).min(rows);
                        let xc = xb.slice_rows(lo, hi);
                        let cat_c: Vec<Vec<u32>> =
                            cat_b.iter().map(|t| t[lo..hi].to_vec()).collect();
                        experts[e].train_pass(&xc, &cat_c, Some(&expert_weights[e][lo..hi]))
                    });
                let mut chunk_results = chunk_results.into_iter();
                let results: Vec<Result<(Vec<DenseGrad>, Vec<f32>)>> = (0..experts.len())
                    .map(|_| reduce_chunk_grads(chunk_results.by_ref().take(n_chunks).collect()))
                    .collect();

                let mut loss_mat = Mat::zeros(xb.rows(), experts.len());
                for (e, res) in results.into_iter().enumerate() {
                    let (mut grads, losses) = res?;
                    for (r, &l) in losses.iter().enumerate() {
                        loss_mat.set(r, e, l);
                        epoch_loss += f64::from(g.get(r, e) * l);
                    }
                    let norm = clip_grads(&mut grads, 5.0 * xb.rows() as f32);
                    if obs_on {
                        grad_norm_sum += f64::from(norm);
                        grad_norm_n += 1;
                    }
                    let mut layers = experts[e].layers_mut();
                    for ((layer, grad), st) in layers
                        .iter_mut()
                        .zip(&grads)
                        .zip(expert_states[e].iter_mut())
                    {
                        st.step(layer, grad, &adam_cfg);
                    }
                }

                if let (Some(gate), Some(states)) = (gate.as_mut(), gate_states.as_mut()) {
                    gate.train_step(&xb, &g, &loss_mat, states, &adam_cfg);
                }
            }

            adam_cfg.lr *= cfg.lr_decay;
            let mean_loss = (epoch_loss / n as f64) as f32;
            if obs_on {
                let ep = epoch as u64;
                ds_obs::series("nn.epoch_loss", ep, f64::from(mean_loss));
                if grad_norm_n > 0 {
                    ds_obs::series("nn.grad_norm", ep, grad_norm_sum / grad_norm_n as f64);
                }
                if rows_seen > 0 {
                    ds_obs::series("nn.gate_entropy", ep, entropy_sum / rows_seen as f64);
                    for (e, u) in util.iter().enumerate() {
                        ds_obs::series_at("nn.expert_util", e as u64, ep, u / rows_seen as f64);
                    }
                }
            }
            report.epoch_losses.push(mean_loss);
            report.epochs_run = epoch + 1;
            // Convergence: stop only when the best loss has not improved
            // by the tolerance for a whole window of epochs — per-epoch
            // deltas are too noisy (shuffling, gate shifts) to judge from
            // consecutive pairs.
            if mean_loss < prev_loss - cfg.tol * prev_loss.abs() {
                prev_loss = mean_loss;
                stall_epochs = 0;
            } else {
                stall_epochs += 1;
                if stall_epochs >= 12 {
                    break;
                }
            }
        }

        Ok((MoeAutoencoder { experts, gate }, report))
    }

    /// Number of experts.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Borrow the experts.
    pub fn experts(&self) -> &[Autoencoder] {
        &self.experts
    }

    /// Consumes the mixture, yielding its experts (used to assemble a
    /// per-cluster mixture from independently trained models).
    pub fn into_experts(self) -> Vec<Autoencoder> {
        self.experts
    }

    /// Zeroes the low `bits` mantissa bits of every weight (bf16-style
    /// truncation at `bits = 16`). Called once after training, *before*
    /// materialization, so compressor and decompressor see identical
    /// weights — and the exported stream halves under the final gzip pass
    /// because every second byte pair is zero. The paper leaves neural
    /// weight compression as future work (§6.1); truncation is the
    /// mildest form and costs a negligible accuracy change.
    pub fn truncate_weights(&mut self, bits: u32) {
        debug_assert!(bits < 24, "would destroy the exponent");
        let mask = u32::MAX << bits;
        for expert in &mut self.experts {
            for layer in expert.layers_mut() {
                for w in layer.w.data_mut() {
                    *w = f32::from_bits(w.to_bits() & mask);
                }
                for b in &mut layer.b {
                    *b = f32::from_bits(b.to_bits() & mask);
                }
            }
        }
    }

    /// Hard expert assignment per tuple (all tuples map to 0 with a single
    /// expert).
    pub fn assign(&self, x: &Mat) -> Vec<usize> {
        match &self.gate {
            Some(g) => g.assign(x),
            None => vec![0; x.rows()],
        }
    }

    /// Assigns each tuple to "the model with the highest accuracy for
    /// each tuple" (§5.2) by measuring the actual reconstruction loss
    /// under every expert. The learned gate approximates this during
    /// training; at materialization the mapping is stored explicitly, so
    /// the exact assignment is both available and strictly better.
    pub fn assign_by_loss(&self, x: &Mat, cat_targets: &[Vec<u32>]) -> Result<Vec<usize>> {
        if self.experts.len() == 1 {
            return Ok(vec![0; x.rows()]);
        }
        let mut best = vec![0usize; x.rows()];
        let mut best_loss = vec![f32::INFINITY; x.rows()];
        for (e, expert) in self.experts.iter().enumerate() {
            let losses = expert.loss_per_tuple(x, cat_targets)?;
            for (r, &l) in losses.iter().enumerate() {
                if l < best_loss[r] {
                    best_loss[r] = l;
                    best[r] = e;
                }
            }
        }
        Ok(best)
    }

    /// Encodes rows with the given expert.
    pub fn encode(&self, expert: usize, x: &Mat) -> Result<Mat> {
        self.experts
            .get(expert)
            .ok_or(NnError::InvalidSpec("expert index out of range"))?
            .encode(x)
    }

    /// Decodes codes with the given expert.
    pub fn decode(&self, expert: usize, codes: &Mat) -> Result<crate::autoencoder::DecodedBatch> {
        self.experts
            .get(expert)
            .ok_or(NnError::InvalidSpec("expert index out of range"))?
            .decode(codes)
    }

    /// Builds a mixture directly from pre-trained experts with no gate.
    ///
    /// Two callers: weight deserialization (decompression does not need the
    /// gate — expert membership is materialized, §6.4), and the k-means
    /// comparator of §7.4.2, which trains one autoencoder per cluster and
    /// routes by cluster assignment instead of a learned gate.
    pub fn from_experts(experts: Vec<Autoencoder>) -> Self {
        MoeAutoencoder {
            experts,
            gate: None,
        }
    }
}

/// Scales all gradients down when their global L2 norm exceeds `max_norm`
/// — small models with softmax heads occasionally produce a pathological
/// batch that would otherwise kick the weights into a dead regime.
/// Returns the pre-clip norm (telemetry: per-epoch gradient norm series).
fn clip_grads(grads: &mut [crate::dense::DenseGrad], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for g in grads.iter() {
        for &v in g.dw.data() {
            sq += f64::from(v) * f64::from(v);
        }
        for &v in &g.db {
            sq += f64::from(v) * f64::from(v);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.dw.data_mut() {
                *v *= scale;
            }
            for v in &mut g.db {
                *v *= scale;
            }
        }
    }
    norm
}

fn softmax_rows(logits: &Mat) -> Mat {
    let mut out = Mat::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out.set(r, c, e);
            sum += e;
        }
        for c in 0..row.len() {
            out.set(r, c, out.get(r, c) / sum);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::Head;
    use rand::Rng;

    /// Two well-separated linear regimes (the Fig. 4 motivating example):
    /// a 2-expert mixture should reconstruct both better than it could with
    /// the same budget forced through one tiny expert.
    fn two_regime_data(n: usize, seed: u64) -> (Mat, Vec<Vec<u32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Mat::zeros(n, 3);
        for r in 0..n {
            let t: f32 = rng.gen();
            if r % 2 == 0 {
                // Regime A: y rises with t, z near 0.
                x.set(r, 0, t);
                x.set(r, 1, 0.8 * t + 0.1);
                x.set(r, 2, 0.05);
            } else {
                // Regime B: y falls with t, z near 1.
                x.set(r, 0, t);
                x.set(r, 1, 0.9 - 0.8 * t);
                x.set(r, 2, 0.95);
            }
        }
        (x, vec![])
    }

    #[test]
    fn single_expert_training_converges() {
        let (x, cats) = two_regime_data(256, 1);
        let spec = ModelSpec::with_defaults(vec![Head::Numeric; 3], 2);
        let cfg = MoeConfig {
            n_experts: 1,
            max_epochs: 40,
            seed: 1,
            ..Default::default()
        };
        let (model, report) = MoeAutoencoder::train(&spec, &x, &cats, &cfg).unwrap();
        assert!(report.epochs_run >= 2);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss must decrease: {first} → {last}");
        assert_eq!(model.n_experts(), 1);
        assert!(model.assign(&x).iter().all(|&e| e == 0));
    }

    #[test]
    fn multi_expert_reduces_loss_and_specializes() {
        let (x, cats) = two_regime_data(512, 2);
        let spec = ModelSpec::with_defaults(vec![Head::Numeric; 3], 1);
        let cfg = MoeConfig {
            n_experts: 2,
            max_epochs: 80,
            tol: 0.0, // run all epochs
            seed: 3,
            ..Default::default()
        };
        let (model, report) = MoeAutoencoder::train(&spec, &x, &cats, &cfg).unwrap();
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < report.epoch_losses[0] * 0.8);
        // The gate should use both experts for this bimodal data.
        let assign = model.assign(&x);
        let ones = assign.iter().filter(|&&e| e == 1).count();
        assert!(
            ones > assign.len() / 10 && ones < assign.len() * 9 / 10,
            "gate collapsed: {ones}/{} to expert 1",
            assign.len()
        );
    }

    #[test]
    fn encode_decode_roundtrip_shapes() {
        let (x, cats) = two_regime_data(64, 4);
        let spec = ModelSpec::with_defaults(vec![Head::Numeric; 3], 2);
        let cfg = MoeConfig {
            n_experts: 2,
            max_epochs: 3,
            seed: 4,
            ..Default::default()
        };
        let (model, _) = MoeAutoencoder::train(&spec, &x, &cats, &cfg).unwrap();
        let codes = model.encode(1, &x).unwrap();
        assert_eq!((codes.rows(), codes.cols()), (64, 2));
        let dec = model.decode(1, &codes).unwrap();
        assert_eq!(dec.simple.cols(), 3);
        assert!(model.encode(5, &x).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let (x, cats) = two_regime_data(8, 5);
        let spec = ModelSpec::with_defaults(vec![Head::Numeric; 3], 2);
        let cfg = MoeConfig {
            n_experts: 0,
            ..Default::default()
        };
        assert!(MoeAutoencoder::train(&spec, &x, &cats, &cfg).is_err());
        let cfg = MoeConfig::default();
        let empty = Mat::zeros(0, 3);
        assert!(MoeAutoencoder::train(&spec, &empty, &cats, &cfg).is_err());
    }

    #[test]
    fn convergence_tolerance_stops_early() {
        let (x, cats) = two_regime_data(128, 6);
        let spec = ModelSpec::with_defaults(vec![Head::Numeric; 3], 2);
        let cfg = MoeConfig {
            n_experts: 1,
            max_epochs: 200,
            tol: 0.5, // absurdly lax: stop almost immediately
            seed: 7,
            ..Default::default()
        };
        let (_, report) = MoeAutoencoder::train(&spec, &x, &cats, &cfg).unwrap();
        assert!(
            report.epochs_run < 20,
            "should stop early, ran {}",
            report.epochs_run
        );
    }

    #[test]
    fn mixed_type_training_with_categoricals() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 128;
        let mut x = Mat::zeros(n, 3);
        let mut cat = vec![0u32; n];
        for r in 0..n {
            let v: f32 = rng.gen();
            x.set(r, 0, v);
            let c = (v * 3.999) as u32;
            cat[r] = c;
            x.set(r, 1, c as f32 / 3.0);
            x.set(r, 2, if v > 0.5 { 1.0 } else { 0.0 });
        }
        let spec = ModelSpec::with_defaults(
            vec![Head::Numeric, Head::Categorical { card: 4 }, Head::Binary],
            2,
        );
        let cfg = MoeConfig {
            n_experts: 2,
            max_epochs: 30,
            seed: 9,
            ..Default::default()
        };
        let (model, report) = MoeAutoencoder::train(&spec, &x, &[cat], &cfg).unwrap();
        assert!(*report.epoch_losses.last().unwrap() < report.epoch_losses[0]);
        let assign = model.assign(&x);
        assert_eq!(assign.len(), n);
    }
}
