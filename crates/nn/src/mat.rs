//! Row-major `f32` matrices with the operations backpropagation needs.
//!
//! The products run on the [`crate::simd`] micro-kernels (AVX2/NEON/
//! scalar, selected once per call via `ds_simd::active()` *before* any
//! fan-out, so pool workers inherit the caller's choice). Once `m·k·n`
//! crosses [`PAR_MIN_ELEMS`] the row ranges additionally fan out over the
//! `ds-exec` pool. Every kernel variant implements the same fixed
//! accumulation schedule (`matmul`/`t_matmul`: strictly ascending `p` per
//! element; `matmul_t`: 8-lane partial sums + a pinned reduction tree —
//! see DESIGN.md §3f), and chunk boundaries depend only on the shapes —
//! so results are bit-identical across any `DS_THREADS` *and* `DS_SIMD`
//! setting (the determinism contract decompression relies on). No BLAS
//! dependency required.

use crate::simd;

/// Product volume (`m·k·n`) below which the kernels run on the calling
/// thread; above it they dispatch row chunks through `ds-exec`. Chosen so
/// per-minibatch products (≈ 128×70×40) stay on the low-overhead serial
/// path while full-table encode/decode products go wide.
const PAR_MIN_ELEMS: usize = 1 << 20;

/// Output rows per parallel task. Fixed by the shape alone — never by the
/// worker count — so chunk boundaries are reproducible everywhere.
const ROW_CHUNK: usize = 64;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer (length must be rows*cols).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (shapes `(m,k) · (k,n) → (m,n)`).
    ///
    /// Bit-identical results for every `DS_THREADS` and `DS_SIMD`
    /// setting: all kernel variants accumulate each element in the same
    /// `p` order, the level is resolved once here (before any fan-out),
    /// and chunk boundaries depend only on the shapes.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let level = ds_simd::active();
        ds_obs::counter_labeled("nn.simd_kernel", level.name(), 1);
        let mut out = Mat::zeros(m, n);
        if m * k * n < PAR_MIN_ELEMS {
            simd::matmul_rows(level, &self.data, &other.data, k, n, 0, &mut out.data);
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        ds_exec::parallel_chunks_mut(&mut out.data, ROW_CHUNK * n, |_, start, out_rows| {
            simd::matmul_rows(level, a, b, k, n, start / n, out_rows);
        });
        out
    }

    /// `selfᵀ · other` (shapes `(k,m)ᵀ · (k,n) → (m,n)`), used for weight
    /// gradients without materializing a transpose.
    pub fn t_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let level = ds_simd::active();
        ds_obs::counter_labeled("nn.simd_kernel", level.name(), 1);
        let mut out = Mat::zeros(m, n);
        simd::t_matmul(level, &self.data, &other.data, k, m, n, &mut out.data);
        out
    }

    /// `self · otherᵀ` (shapes `(m,k) · (n,k)ᵀ → (m,n)`), used to push
    /// gradients back through a layer.
    ///
    /// Every element is an independent lane-group dot product (8
    /// ascending partial sums + a pinned reduction tree — DESIGN.md §3f)
    /// in every kernel variant, so results are bit-identical across
    /// thread counts and SIMD levels.
    pub fn matmul_t(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let level = ds_simd::active();
        ds_obs::counter_labeled("nn.simd_kernel", level.name(), 1);
        let mut out = Mat::zeros(m, n);
        if m * k * n < PAR_MIN_ELEMS {
            simd::matmul_t_rows(level, &self.data, &other.data, k, n, 0, &mut out.data);
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        ds_exec::parallel_chunks_mut(&mut out.data, ROW_CHUNK * n, |_, start, out_rows| {
            simd::matmul_t_rows(level, a, b, k, n, start / n, out_rows);
        });
        out
    }

    /// Adds a row vector to every row (bias add).
    pub fn add_row_vec(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Copies the rows at `indexes` into a new matrix.
    pub fn take_rows(&self, indexes: &[usize]) -> Mat {
        let mut out = Mat::zeros(indexes.len(), self.cols);
        for (dst, &src) in indexes.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Copies the contiguous row range `[from, to)` into a new matrix
    /// (one memcpy; cheaper than `take_rows` for minibatch chunking).
    pub fn slice_rows(&self, from: usize, to: usize) -> Mat {
        assert!(from <= to && to <= self.rows, "row range out of bounds");
        Mat {
            rows: to - from,
            cols: self.cols,
            data: self.data[from * self.cols..to * self.cols].to_vec(),
        }
    }

    /// Horizontal slice: columns `[from, to)` of every row.
    pub fn slice_cols(&self, from: usize, to: usize) -> Mat {
        assert!(from <= to && to <= self.cols);
        let mut out = Mat::zeros(self.rows, to - from);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[from..to]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Mat {
        Mat::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // aᵀ is 2x3
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.t_matmul(&b); // (2,3)·(3,2) -> (2,2)
                                // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c.data(), &[6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]); // bᵀ is 3x2
        let c = a.matmul_t(&b); // (2,3)·(3,2) -> (2,2)
        assert_eq!(c.data(), &[3.0, 5.0, 9.0, 11.0]);
    }

    #[test]
    fn bias_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        a.add_row_vec(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn take_rows_and_slice_cols() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sub = a.take_rows(&[2, 0]);
        assert_eq!(sub.data(), &[5.0, 6.0, 1.0, 2.0]);
        let cols = a.slice_cols(1, 2);
        assert_eq!(cols.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut a = m(2, 2, &[-1.0, 2.0, -3.0, 4.0]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn mismatched_shapes_panic_loudly() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn slice_rows_copies_contiguous_range() {
        let a = m(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let s = a.slice_rows(1, 3);
        assert_eq!((s.rows(), s.cols()), (2, 2));
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_rows(2, 2).rows(), 0);
    }

    /// Pseudo-random matrix with ReLU-like sparsity (exercises the
    /// zero-skip paths).
    fn arb_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 40) as f32 / (1u32 << 24) as f32;
                if u < 0.3 {
                    0.0
                } else {
                    (u - 0.6) * 4.0
                }
            })
            .collect();
        Mat::from_vec(rows, cols, data)
    }

    /// Reference scalar ikj product, independent of the shipped kernels.
    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let (m_, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Mat::zeros(m_, n);
        for i in 0..m_ {
            for p in 0..k {
                let av = a.get(i, p);
                for j in 0..n {
                    let v = out.get(i, j) + av * b.get(p, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Independent re-statement of the lane-group dot schedule from
    /// DESIGN.md §3f: 8 ascending partial sums, tail in lanes
    /// `0..k%8`, then the pinned reduction tree. `matmul_t` must
    /// reproduce this exactly at every level and shape.
    fn lane_group_dot(a: &[f32], b: &[f32]) -> f32 {
        let k = a.len();
        let full = k - k % 8;
        let mut lanes = [0.0f32; 8];
        for g in (0..full).step_by(8) {
            for l in 0..8 {
                lanes[l] += a[g + l] * b[g + l];
            }
        }
        for l in 0..(k - full) {
            lanes[l] += a[full + l] * b[full + l];
        }
        let q0 = lanes[0] + lanes[4];
        let q1 = lanes[1] + lanes[5];
        let q2 = lanes[2] + lanes[6];
        let q3 = lanes[3] + lanes[7];
        (q0 + q2) + (q1 + q3)
    }

    fn reference_matmul_t(a: &Mat, b: &Mat) -> Mat {
        let (m_, n) = (a.rows(), b.rows());
        let mut out = Mat::zeros(m_, n);
        for i in 0..m_ {
            for j in 0..n {
                out.set(i, j, lane_group_dot(a.row(i), b.row(j)));
            }
        }
        out
    }

    /// The shipped kernels must reproduce the documented accumulation
    /// schedules exactly — checked on shapes large enough to force the
    /// parallel blocked path (above PAR_MIN_ELEMS), with odd dimensions
    /// for edge rows and lane-group tails.
    #[test]
    fn kernels_bit_match_reference_schedules() {
        // 131*129*67 ≈ 1.13M ≥ PAR_MIN_ELEMS → blocked path.
        let a = arb_mat(131, 129, 1);
        let b = arb_mat(129, 67, 2);
        let blocked = ds_exec::with_thread_limit(1, || a.matmul(&b));
        let naive = naive_matmul(&a, &b);
        assert_eq!(blocked.data(), naive.data());

        let bt = arb_mat(67, 129, 3);
        let blocked_t = ds_exec::with_thread_limit(1, || a.matmul_t(&bt));
        let reference_t = reference_matmul_t(&a, &bt);
        assert_eq!(blocked_t.data(), reference_t.data());

        // Small-path shapes use the same schedules.
        let sa = arb_mat(13, 21, 4);
        let sbt = arb_mat(9, 21, 5);
        assert_eq!(
            sa.matmul_t(&sbt).data(),
            reference_matmul_t(&sa, &sbt).data()
        );
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        let a = arb_mat(137, 111, 7);
        let b = arb_mat(111, 101, 8);
        let bt = arb_mat(101, 111, 9);
        let serial = ds_exec::with_thread_limit(1, || (a.matmul(&b), a.matmul_t(&bt)));
        for limit in [2, 8] {
            let parallel = ds_exec::with_thread_limit(limit, || (a.matmul(&b), a.matmul_t(&bt)));
            assert_eq!(serial.0.data(), parallel.0.data(), "matmul, limit {limit}");
            assert_eq!(
                serial.1.data(),
                parallel.1.data(),
                "matmul_t, limit {limit}"
            );
        }
    }

    /// Bit-compare helper: `f32` equality would let `-0.0 == 0.0` slip.
    fn bits(m: &Mat) -> Vec<u32> {
        m.data().iter().map(|v| v.to_bits()).collect()
    }

    /// `DS_SIMD=off` (scalar fallback) and the detected level must agree
    /// bit-for-bit on all three products, small and blocked paths alike.
    /// Vacuous on scalar-only hosts — the identity still holds.
    #[test]
    fn simd_level_never_changes_results() {
        use ds_simd::Level;
        let shapes = [(13usize, 21usize, 9usize), (131, 129, 67)];
        for (seed, &(m_, k, n)) in shapes.iter().enumerate() {
            let a = arb_mat(m_, k, seed as u64 * 3 + 10);
            let b = arb_mat(k, n, seed as u64 * 3 + 11);
            let bt = arb_mat(n, k, seed as u64 * 3 + 12);
            let at = arb_mat(k, m_, seed as u64 * 3 + 13);
            let fast = (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b));
            let slow = ds_simd::with_level(Level::Scalar, || {
                (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b))
            });
            assert_eq!(bits(&fast.0), bits(&slow.0), "matmul {m_}x{k}x{n}");
            assert_eq!(bits(&fast.1), bits(&slow.1), "matmul_t {m_}x{k}x{n}");
            assert_eq!(bits(&fast.2), bits(&slow.2), "t_matmul {m_}x{k}x{n}");
        }
    }
}
