//! Row-major `f32` matrices with the operations backpropagation needs.
//!
//! The models in this workspace are small (hidden width ≈ 2× the column
//! count of a table), so a clean cache-friendly `ikj` matmul is plenty; no
//! BLAS dependency required.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer (length must be rows*cols).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (shapes `(m,k) · (k,n) → (m,n)`).
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // ReLU activations are often sparse
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` (shapes `(k,m)ᵀ · (k,n) → (m,n)`), used for weight
    /// gradients without materializing a transpose.
    pub fn t_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (shapes `(m,k) · (n,k)ᵀ → (m,n)`), used to push
    /// gradients back through a layer.
    pub fn matmul_t(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds a row vector to every row (bias add).
    pub fn add_row_vec(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Copies the rows at `indexes` into a new matrix.
    pub fn take_rows(&self, indexes: &[usize]) -> Mat {
        let mut out = Mat::zeros(indexes.len(), self.cols);
        for (dst, &src) in indexes.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontal slice: columns `[from, to)` of every row.
    pub fn slice_cols(&self, from: usize, to: usize) -> Mat {
        assert!(from <= to && to <= self.cols);
        let mut out = Mat::zeros(self.rows, to - from);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[from..to]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Mat {
        Mat::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // aᵀ is 2x3
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.t_matmul(&b); // (2,3)·(3,2) -> (2,2)
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c.data(), &[6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]); // bᵀ is 3x2
        let c = a.matmul_t(&b); // (2,3)·(3,2) -> (2,2)
        assert_eq!(c.data(), &[3.0, 5.0, 9.0, 11.0]);
    }

    #[test]
    fn bias_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        a.add_row_vec(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn take_rows_and_slice_cols() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sub = a.take_rows(&[2, 0]);
        assert_eq!(sub.data(), &[5.0, 6.0, 1.0, 2.0]);
        let cols = a.slice_cols(1, 2);
        assert_eq!(cols.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut a = m(2, 2, &[-1.0, 2.0, -3.0, 4.0]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn mismatched_shapes_panic_loudly() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
