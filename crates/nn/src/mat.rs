//! Row-major `f32` matrices with the operations backpropagation needs.
//!
//! Small products use a clean scalar `ikj` kernel; once `m·k·n` crosses
//! [`PAR_MIN_ELEMS`], `matmul` / `matmul_t` switch to cache-blocked,
//! register-tiled kernels whose row ranges fan out over the `ds-exec`
//! pool. Both paths accumulate every output element strictly in ascending
//! `p` order, and the kernel choice depends only on the shapes — so
//! results are bit-identical across any `DS_THREADS` setting (the
//! determinism contract decompression relies on). No BLAS dependency
//! required.

/// Product volume (`m·k·n`) below which the scalar kernels run; above it
/// the blocked kernels dispatch row chunks through `ds-exec`. Chosen so
/// per-minibatch products (≈ 128×70×40) stay on the low-overhead scalar
/// path while full-table encode/decode products go wide.
const PAR_MIN_ELEMS: usize = 1 << 20;

/// Output rows per parallel task. Fixed by the shape alone — never by the
/// worker count — so chunk boundaries are reproducible everywhere.
const ROW_CHUNK: usize = 64;

/// Depth (`k`) panel width for the blocked `matmul` kernel: a panel of B
/// (`KC × n` floats) is streamed repeatedly while it is still cache-hot.
const KC: usize = 256;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Blocked/tiled kernel for `out[row0..row0+r] = A[row0..row0+r] · B`.
///
/// Loop order is `kb → row-quad → p → j`: for a fixed output row, `p`
/// ascends within each `kb` panel and panels ascend, so every element is
/// accumulated in exactly the same order as the scalar `ikj` kernel.
/// Four output rows share each streamed `B` row (register tiling).
fn matmul_rows_blocked(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    let r = out_rows.len() / n;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = 0;
        // 4-row micro-kernel.
        while i + 4 <= r {
            let quad = &mut out_rows[i * n..(i + 4) * n];
            let (q0, rest) = quad.split_at_mut(n);
            let (q1, rest) = rest.split_at_mut(n);
            let (q2, q3) = rest.split_at_mut(n);
            let a0 = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let a1 = &a[(row0 + i + 1) * k..(row0 + i + 2) * k];
            let a2 = &a[(row0 + i + 2) * k..(row0 + i + 3) * k];
            let a3 = &a[(row0 + i + 3) * k..(row0 + i + 4) * k];
            for p in kb..kend {
                let (c0, c1, c2, c3) = (a0[p], a1[p], a2[p], a3[p]);
                // Adding a `±0.0 · b` term is an exact no-op for finite
                // `b`, so this skip cannot change results — it only
                // exploits ReLU sparsity, like the scalar kernel's skip.
                if c0 == 0.0 && c1 == 0.0 && c2 == 0.0 && c3 == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                let iter = q0
                    .iter_mut()
                    .zip(q1.iter_mut())
                    .zip(q2.iter_mut())
                    .zip(q3.iter_mut())
                    .zip(b_row.iter());
                for ((((o0, o1), o2), o3), &bv) in iter {
                    *o0 += c0 * bv;
                    *o1 += c1 * bv;
                    *o2 += c2 * bv;
                    *o3 += c3 * bv;
                }
            }
            i += 4;
        }
        // Remainder rows, one at a time.
        while i < r {
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (p, &c) in a_row.iter().enumerate().take(kend).skip(kb) {
                if c == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += c * bv;
                }
            }
            i += 1;
        }
        kb = kend;
    }
}

/// Tiled kernel for `out[row0..row0+r] = A[row0..row0+r] · Bᵀ`.
///
/// Each output element is an independent dot product accumulated in
/// ascending `p` order — identical maths to the scalar row-dot kernel.
/// Four `B` rows are held per pass so they stay in registers/L1 across
/// the chunk's `A` rows.
fn matmul_t_rows_tiled(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    out_rows: &mut [f32],
) {
    let r = out_rows.len() / n;
    let mut j = 0;
    while j + 4 <= n {
        let b0 = &b[j * k..(j + 1) * k];
        let b1 = &b[(j + 1) * k..(j + 2) * k];
        let b2 = &b[(j + 2) * k..(j + 3) * k];
        let b3 = &b[(j + 3) * k..(j + 4) * k];
        for i in 0..r {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let iter = a_row
                .iter()
                .zip(b0.iter())
                .zip(b1.iter())
                .zip(b2.iter())
                .zip(b3.iter());
            for ((((&av, &v0), &v1), &v2), &v3) in iter {
                s0 += av * v0;
                s1 += av * v1;
                s2 += av * v2;
                s3 += av * v3;
            }
            let o_row = &mut out_rows[i * n..(i + 1) * n];
            o_row[j] = s0;
            o_row[j + 1] = s1;
            o_row[j + 2] = s2;
            o_row[j + 3] = s3;
        }
        j += 4;
    }
    while j < n {
        let b_row = &b[j * k..(j + 1) * k];
        for i in 0..r {
            let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out_rows[i * n + j] = acc;
        }
        j += 1;
    }
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer (length must be rows*cols).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (shapes `(m,k) · (k,n) → (m,n)`).
    ///
    /// Bit-identical results for every thread setting: the scalar and
    /// blocked kernels accumulate each element in the same `p` order,
    /// and which kernel runs depends only on the shapes.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        if m * k * n < PAR_MIN_ELEMS {
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (p, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue; // ReLU activations are often sparse
                    }
                    let b_row = &other.data[p * n..(p + 1) * n];
                    for (o, &b) in o_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        ds_exec::parallel_chunks_mut(&mut out.data, ROW_CHUNK * n, |_, start, out_rows| {
            matmul_rows_blocked(a, b, k, n, start / n, out_rows);
        });
        out
    }

    /// `selfᵀ · other` (shapes `(k,m)ᵀ · (k,n) → (m,n)`), used for weight
    /// gradients without materializing a transpose.
    pub fn t_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (shapes `(m,k) · (n,k)ᵀ → (m,n)`), used to push
    /// gradients back through a layer.
    ///
    /// Every element is an independent `p`-ascending dot product in both
    /// kernels, so results are bit-identical across thread settings.
    pub fn matmul_t(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Mat::zeros(m, n);
        if m * k * n < PAR_MIN_ELEMS {
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (j, o) in o_row.iter_mut().enumerate() {
                    let b_row = &other.data[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
            return out;
        }
        let (a, b) = (&self.data, &other.data);
        ds_exec::parallel_chunks_mut(&mut out.data, ROW_CHUNK * n, |_, start, out_rows| {
            matmul_t_rows_tiled(a, b, k, n, start / n, out_rows);
        });
        out
    }

    /// Adds a row vector to every row (bias add).
    pub fn add_row_vec(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Copies the rows at `indexes` into a new matrix.
    pub fn take_rows(&self, indexes: &[usize]) -> Mat {
        let mut out = Mat::zeros(indexes.len(), self.cols);
        for (dst, &src) in indexes.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Copies the contiguous row range `[from, to)` into a new matrix
    /// (one memcpy; cheaper than `take_rows` for minibatch chunking).
    pub fn slice_rows(&self, from: usize, to: usize) -> Mat {
        assert!(from <= to && to <= self.rows, "row range out of bounds");
        Mat {
            rows: to - from,
            cols: self.cols,
            data: self.data[from * self.cols..to * self.cols].to_vec(),
        }
    }

    /// Horizontal slice: columns `[from, to)` of every row.
    pub fn slice_cols(&self, from: usize, to: usize) -> Mat {
        assert!(from <= to && to <= self.cols);
        let mut out = Mat::zeros(self.rows, to - from);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[from..to]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Mat {
        Mat::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // aᵀ is 2x3
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.t_matmul(&b); // (2,3)·(3,2) -> (2,2)
                                // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c.data(), &[6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]); // bᵀ is 3x2
        let c = a.matmul_t(&b); // (2,3)·(3,2) -> (2,2)
        assert_eq!(c.data(), &[3.0, 5.0, 9.0, 11.0]);
    }

    #[test]
    fn bias_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        a.add_row_vec(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn take_rows_and_slice_cols() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sub = a.take_rows(&[2, 0]);
        assert_eq!(sub.data(), &[5.0, 6.0, 1.0, 2.0]);
        let cols = a.slice_cols(1, 2);
        assert_eq!(cols.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut a = m(2, 2, &[-1.0, 2.0, -3.0, 4.0]);
        a.map_inplace(|v| v.max(0.0));
        assert_eq!(a.data(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn mismatched_shapes_panic_loudly() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn slice_rows_copies_contiguous_range() {
        let a = m(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let s = a.slice_rows(1, 3);
        assert_eq!((s.rows(), s.cols()), (2, 2));
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.slice_rows(2, 2).rows(), 0);
    }

    /// Pseudo-random matrix with ReLU-like sparsity (exercises the
    /// zero-skip paths).
    fn arb_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 40) as f32 / (1u32 << 24) as f32;
                if u < 0.3 {
                    0.0
                } else {
                    (u - 0.6) * 4.0
                }
            })
            .collect();
        Mat::from_vec(rows, cols, data)
    }

    /// Reference scalar ikj product, independent of the shipped kernels.
    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let (m_, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Mat::zeros(m_, n);
        for i in 0..m_ {
            for p in 0..k {
                let av = a.get(i, p);
                for j in 0..n {
                    let v = out.get(i, j) + av * b.get(p, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    fn naive_matmul_t(a: &Mat, b: &Mat) -> Mat {
        let (m_, k, n) = (a.rows(), a.cols(), b.rows());
        let mut out = Mat::zeros(m_, n);
        for i in 0..m_ {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.get(i, p) * b.get(j, p);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// The blocked kernels must reproduce the scalar accumulation order
    /// exactly — checked on shapes large enough to force the blocked
    /// path (above PAR_MIN_ELEMS), with odd dimensions for edge rows.
    #[test]
    fn blocked_kernels_bit_match_naive_order() {
        // 131*129*67 ≈ 1.13M ≥ PAR_MIN_ELEMS → blocked path.
        let a = arb_mat(131, 129, 1);
        let b = arb_mat(129, 67, 2);
        let blocked = ds_exec::with_thread_limit(1, || a.matmul(&b));
        let naive = naive_matmul(&a, &b);
        assert_eq!(blocked.data(), naive.data());

        let bt = arb_mat(67, 129, 3);
        let blocked_t = ds_exec::with_thread_limit(1, || a.matmul_t(&bt));
        let naive_t = naive_matmul_t(&a, &bt);
        assert_eq!(blocked_t.data(), naive_t.data());
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        let a = arb_mat(137, 111, 7);
        let b = arb_mat(111, 101, 8);
        let bt = arb_mat(101, 111, 9);
        let serial = ds_exec::with_thread_limit(1, || (a.matmul(&b), a.matmul_t(&bt)));
        for limit in [2, 8] {
            let parallel = ds_exec::with_thread_limit(limit, || (a.matmul(&b), a.matmul_t(&bt)));
            assert_eq!(serial.0.data(), parallel.0.data(), "matmul, limit {limit}");
            assert_eq!(
                serial.1.data(),
                parallel.1.data(),
                "matmul_t, limit {limit}"
            );
        }
    }
}
