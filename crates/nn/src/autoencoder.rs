//! The DeepSqueeze autoencoder (§5.1 of the paper).
//!
//! Architecture, following the paper exactly:
//!
//! * **Input**: one node per column, irrespective of type (§5.3) — numeric
//!   values min-max scaled to [0,1], categorical values as normalized
//!   dictionary codes.
//! * **Encoder**: two hidden layers of width `hidden` (paper default: 2×
//!   the column count), ReLU, then a sigmoid code layer of `code_size`
//!   nodes — the learned representation that gets materialized.
//! * **Decoder trunk**: symmetric two ReLU hidden layers.
//! * **Numeric / binary heads**: one sigmoid node per column; MSE loss for
//!   numerics (closeness matters — failures store differences, §5.3), BCE
//!   for binary columns.
//! * **Categorical head with parameter sharing** (§5.1, Fig. 3): an
//!   auxiliary layer with one node per categorical column plus a *signal
//!   node* carrying the column index, followed by a single shared output
//!   layer of width `max(cardinality)`. Each categorical column is decoded
//!   by re-running the shared layer with its own signal value and masking
//!   the softmax to the column's cardinality. This bounds the final
//!   fully-connected layer by the *largest* dictionary instead of the sum
//!   of all dictionaries.
//!
//! The Fig. 7 ablation baseline ("single layer + linear activation") is
//! the same type with [`ModelSpec::linear_single_layer`] set.

use crate::dense::{sigmoid, Activation, Dense, DenseGrad};
use crate::mat::Mat;
use crate::{NnError, Result};
use rand::rngs::StdRng;

/// Per-column output-head kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Head {
    /// Ordered value in [0,1]; sigmoid node + MSE.
    Numeric,
    /// Two-valued categorical; sigmoid node + binary cross-entropy, and
    /// the XOR failure encoding downstream (§6.3.1).
    Binary,
    /// Categorical with `card` distinct values; shared softmax output.
    Categorical {
        /// Number of distinct values (≥ 3; use [`Head::Binary`] for 2).
        card: usize,
    },
}

/// Architecture description for one autoencoder (one expert).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// One head per model-visible column, in input order.
    pub heads: Vec<Head>,
    /// Width of the representation (code) layer — hyperparameter #1 (§5.4).
    pub code_size: usize,
    /// Hidden-layer width; the paper uses 2× the column count.
    pub hidden: usize,
    /// Fig. 7 baseline: one linear layer each side, no nonlinearity.
    pub linear_single_layer: bool,
    /// Relative weight of numeric MSE terms vs categorical cross-entropy.
    pub numeric_loss_weight: f32,
    /// Auxiliary nodes per categorical column feeding the shared output
    /// layer. The paper draws one node per column (Fig. 3); a small block
    /// per column keeps the shared layer bounded by `max_card` while
    /// giving each column a usable class embedding.
    pub aux_width: usize,
}

impl ModelSpec {
    /// Spec with the paper's defaults for a given head layout.
    pub fn with_defaults(heads: Vec<Head>, code_size: usize) -> Self {
        let hidden = (heads.len() * 2).max(4);
        ModelSpec {
            heads,
            code_size,
            hidden,
            linear_single_layer: false,
            numeric_loss_weight: 1.0,
            aux_width: 4,
        }
    }

    /// Number of input nodes (= number of model-visible columns).
    pub fn input_dim(&self) -> usize {
        self.heads.len()
    }

    fn validate(&self) -> Result<()> {
        if self.heads.is_empty() {
            return Err(NnError::InvalidSpec("no columns"));
        }
        if self.code_size == 0 {
            return Err(NnError::InvalidSpec("code size must be >= 1"));
        }
        if self.hidden == 0 {
            return Err(NnError::InvalidSpec("hidden width must be >= 1"));
        }
        if self.aux_width == 0 {
            return Err(NnError::InvalidSpec("aux width must be >= 1"));
        }
        for h in &self.heads {
            if let Head::Categorical { card } = h {
                if *card < 2 {
                    return Err(NnError::InvalidSpec("categorical cardinality < 2"));
                }
            }
        }
        Ok(())
    }
}

/// Index bookkeeping derived from a spec.
#[derive(Debug, Clone)]
pub(crate) struct HeadLayout {
    /// (column index, is_binary) for each simple (1-node) head, in order.
    pub simple: Vec<(usize, bool)>,
    /// (column index, cardinality) for each categorical head, in order.
    pub cat: Vec<(usize, usize)>,
    /// Largest categorical cardinality (0 when there are none).
    pub max_card: usize,
}

impl HeadLayout {
    pub fn of(spec: &ModelSpec) -> Self {
        let mut simple = Vec::new();
        let mut cat = Vec::new();
        for (i, h) in spec.heads.iter().enumerate() {
            match h {
                Head::Numeric => simple.push((i, false)),
                Head::Binary => simple.push((i, true)),
                Head::Categorical { card } => cat.push((i, *card)),
            }
        }
        let max_card = cat.iter().map(|&(_, c)| c).max().unwrap_or(0);
        HeadLayout {
            simple,
            cat,
            max_card,
        }
    }
}

/// Decoded predictions for a batch.
#[derive(Debug, Clone)]
pub struct DecodedBatch {
    /// B × n_simple sigmoid outputs, ordered like the spec's simple heads.
    pub simple: Mat,
    /// Per categorical head (spec order): B × card softmax probabilities.
    pub cat_probs: Vec<Mat>,
}

/// Everything the backward pass needs from a forward pass.
struct ForwardCache {
    enc_acts: Vec<Mat>, // activations after each encoder layer
    code: Mat,
    trunk_acts: Vec<Mat>,
    simple_logits: Option<Mat>,
    simple_probs: Option<Mat>,
    aux_out: Option<Mat>,
    cat_probs: Vec<Mat>,
}

/// The autoencoder for a single expert.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    spec: ModelSpec,
    layout: HeadLayout,
    enc: Vec<Dense>,
    trunk: Vec<Dense>,
    simple_head: Option<Dense>,
    aux: Option<Dense>,
    shared: Option<Dense>,
}

impl Autoencoder {
    /// Builds a randomly initialized model.
    pub fn new(spec: ModelSpec, rng: &mut StdRng) -> Result<Self> {
        spec.validate()?;
        let layout = HeadLayout::of(&spec);
        let d = spec.input_dim();
        let k = spec.code_size;
        let h = spec.hidden;

        let (enc, trunk, trunk_dim) = if spec.linear_single_layer {
            let enc = vec![Dense::xavier(d, k, Activation::Identity, rng)];
            (enc, Vec::new(), k)
        } else {
            let enc = vec![
                Dense::xavier(d, h, Activation::Relu, rng),
                Dense::xavier(h, h, Activation::Relu, rng),
                Dense::xavier(h, k, Activation::Sigmoid, rng),
            ];
            let trunk = vec![
                Dense::xavier(k, h, Activation::Relu, rng),
                Dense::xavier(h, h, Activation::Relu, rng),
            ];
            (enc, trunk, h)
        };

        let simple_head = if layout.simple.is_empty() {
            None
        } else {
            // Identity activation: sigmoid applied manually so binary BCE
            // gradients can use the stable (p - t) form.
            Some(Dense::xavier(
                trunk_dim,
                layout.simple.len(),
                Activation::Identity,
                rng,
            ))
        };
        let (aux, shared) = if layout.cat.is_empty() {
            (None, None)
        } else {
            let aux = Dense::xavier(
                trunk_dim,
                layout.cat.len() * spec.aux_width,
                Activation::Tanh,
                rng,
            );
            let shared = Dense::xavier(
                layout.cat.len() * spec.aux_width + 1,
                layout.max_card,
                Activation::Identity,
                rng,
            );
            (Some(aux), Some(shared))
        };

        Ok(Autoencoder {
            spec,
            layout,
            enc,
            trunk,
            simple_head,
            aux,
            shared,
        })
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Signal value fed to the shared layer for categorical column `j`:
    /// a distinct, bounded scalar per column.
    fn signal(&self, j: usize) -> f32 {
        (j + 1) as f32 / self.layout.cat.len() as f32
    }

    /// Maps input rows to codes (the representation layer).
    pub fn encode(&self, x: &Mat) -> Result<Mat> {
        if x.cols() != self.spec.input_dim() {
            return Err(NnError::ShapeMismatch("encode: wrong input width"));
        }
        let mut cur = x.clone();
        for layer in &self.enc {
            cur = layer.forward(&cur);
        }
        Ok(cur)
    }

    /// Reconstructs column predictions from codes.
    pub fn decode(&self, codes: &Mat) -> Result<DecodedBatch> {
        if codes.cols() != self.spec.code_size {
            return Err(NnError::ShapeMismatch("decode: wrong code width"));
        }
        let mut t = codes.clone();
        for layer in &self.trunk {
            t = layer.forward(&t);
        }

        let simple = match &self.simple_head {
            Some(head) => {
                let mut logits = head.forward(&t);
                logits.map_inplace(sigmoid);
                logits
            }
            None => Mat::zeros(codes.rows(), 0),
        };

        let mut cat_probs = Vec::with_capacity(self.layout.cat.len());
        if let (Some(aux), Some(shared)) = (&self.aux, &self.shared) {
            let aux_out = aux.forward(&t);
            for (j, &(_, card)) in self.layout.cat.iter().enumerate() {
                let logits =
                    shared_forward_column(shared, &aux_out, j, self.spec.aux_width, self.signal(j));
                cat_probs.push(masked_softmax(&logits, card));
            }
        }
        Ok(DecodedBatch { simple, cat_probs })
    }

    /// Full forward pass keeping every intermediate activation.
    fn forward_cached(&self, x: &Mat) -> ForwardCache {
        let mut enc_acts = Vec::with_capacity(self.enc.len());
        let mut cur = x.clone();
        for layer in &self.enc {
            cur = layer.forward(&cur);
            enc_acts.push(cur.clone());
        }
        let code = enc_acts.last().expect("encoder nonempty").clone();

        let mut trunk_acts = Vec::with_capacity(self.trunk.len());
        let mut t = code.clone();
        for layer in &self.trunk {
            t = layer.forward(&t);
            trunk_acts.push(t.clone());
        }

        let (simple_logits, simple_probs) = match &self.simple_head {
            Some(head) => {
                let logits = head.forward(&t);
                let mut probs = logits.clone();
                probs.map_inplace(sigmoid);
                (Some(logits), Some(probs))
            }
            None => (None, None),
        };

        let mut cat_probs = Vec::new();
        let aux_out = match (&self.aux, &self.shared) {
            (Some(aux), Some(shared)) => {
                let aux_out = aux.forward(&t);
                for (j, &(_, card)) in self.layout.cat.iter().enumerate() {
                    let logits = shared_forward_column(
                        shared,
                        &aux_out,
                        j,
                        self.spec.aux_width,
                        self.signal(j),
                    );
                    cat_probs.push(masked_softmax(&logits, card));
                }
                Some(aux_out)
            }
            _ => None,
        };

        ForwardCache {
            enc_acts,
            code,
            trunk_acts,
            simple_logits,
            simple_probs,
            aux_out,
            cat_probs,
        }
    }

    /// One training pass over a batch: forward, per-tuple loss, backward.
    ///
    /// * `x` — B × input_dim batch; numeric/binary reconstruction targets
    ///   are the inputs themselves (autoencoding).
    /// * `cat_targets` — per categorical head (spec order), the true
    ///   dictionary codes, each of length B.
    /// * `row_weights` — optional per-tuple gradient scale (the mixture of
    ///   experts passes its gate probabilities here, §5.2/§5.3).
    ///
    /// Returns parameter gradients (in [`Autoencoder::layers`] order) and
    /// the unweighted per-tuple loss.
    pub fn train_pass(
        &self,
        x: &Mat,
        cat_targets: &[Vec<u32>],
        row_weights: Option<&[f32]>,
    ) -> Result<(Vec<DenseGrad>, Vec<f32>)> {
        if x.cols() != self.spec.input_dim() {
            return Err(NnError::ShapeMismatch("train: wrong input width"));
        }
        if cat_targets.len() != self.layout.cat.len() {
            return Err(NnError::ShapeMismatch("train: wrong cat target count"));
        }
        let b = x.rows();
        for t in cat_targets {
            if t.len() != b {
                return Err(NnError::ShapeMismatch("train: cat target length"));
            }
        }
        if let Some(w) = row_weights {
            if w.len() != b {
                return Err(NnError::ShapeMismatch("train: row weight length"));
            }
        }

        let cache = self.forward_cached(x);
        let mut per_tuple = vec![0.0f32; b];
        let weight_of = |r: usize| row_weights.map_or(1.0, |w| w[r]);

        // Gradient flowing into the trunk output (or code when linear).
        let trunk_dim = self.trunk_dim();
        let mut d_trunk = Mat::zeros(b, trunk_dim);
        let mut grads_rev: Vec<DenseGrad> = Vec::new();

        // ---- simple heads -------------------------------------------------
        if let Some(head) = &self.simple_head {
            let logits = cache.simple_logits.as_ref().expect("head implies logits");
            let probs = cache.simple_probs.as_ref().expect("head implies probs");
            let mut dz = Mat::zeros(b, self.layout.simple.len());
            let w_num = self.spec.numeric_loss_weight;
            for r in 0..b {
                let rw = weight_of(r);
                for (s, &(col, is_binary)) in self.layout.simple.iter().enumerate() {
                    let p = probs.get(r, s);
                    let t = x.get(r, col);
                    if is_binary {
                        // BCE with sigmoid: dL/dz = p - t.
                        let pc = p.clamp(1e-7, 1.0 - 1e-7);
                        per_tuple[r] += -(t * pc.ln() + (1.0 - t) * (1.0 - pc).ln());
                        dz.set(r, s, rw * (p - t));
                    } else {
                        let diff = p - t;
                        per_tuple[r] += w_num * diff * diff;
                        // MSE through sigmoid: dL/dz = 2w·diff·p(1-p).
                        dz.set(r, s, rw * w_num * 2.0 * diff * p * (1.0 - p));
                    }
                }
            }
            let trunk_out = self.trunk_output(&cache);
            let (dx, g) = head.backward(trunk_out, logits, dz);
            add_into(&mut d_trunk, &dx);
            grads_rev.push(g);
        }

        // ---- categorical heads (parameter sharing) ------------------------
        if let (Some(aux), Some(shared)) = (&self.aux, &self.shared) {
            let aux_out = cache.aux_out.as_ref().expect("aux implies output");
            let n_cat = self.layout.cat.len();
            let mut d_aux = Mat::zeros(b, n_cat * self.spec.aux_width);
            let mut shared_grad = shared.zero_grad();
            for (j, &(_, card)) in self.layout.cat.iter().enumerate() {
                let probs = &cache.cat_probs[j];
                // Softmax CE gradient: dz = p; dz[target] -= 1 (masked
                // entries have p = 0 already).
                let mut dz = Mat::zeros(b, self.layout.max_card);
                for r in 0..b {
                    let target = cat_targets[j][r] as usize;
                    if target >= card {
                        return Err(NnError::ShapeMismatch("train: target code >= card"));
                    }
                    let rw = weight_of(r);
                    let p_row = probs.row(r);
                    let p_t = p_row[target].max(1e-7);
                    per_tuple[r] += -p_t.ln();
                    let dz_row = dz.row_mut(r);
                    for ((g, &p), c) in dz_row[..card].iter_mut().zip(&p_row[..card]).zip(0..) {
                        let adj = if c == target { p - 1.0 } else { p };
                        *g = rw * adj;
                    }
                }
                // Shared layer is Identity-activated; hand-rolled backward
                // exploits the masked structure: only the active block and
                // the signal row receive weight gradients, and the input
                // gradient is needed only for the active block (everything
                // else is zero by construction).
                let width = self.spec.aux_width;
                let n_inputs = shared.input_dim();
                let max_card = self.layout.max_card;
                let sig = self.signal(j);
                for r in 0..b {
                    let dz_row = dz.row(r);
                    for k in 0..width {
                        let c = j * width + k;
                        let a = aux_out.get(r, c);
                        if a != 0.0 {
                            let dw_row = shared_grad.dw.row_mut(c);
                            for (dwv, &dzv) in dw_row.iter_mut().zip(dz_row) {
                                *dwv += a * dzv;
                            }
                        }
                    }
                    let dw_row = shared_grad.dw.row_mut(n_inputs - 1);
                    for (dwv, &dzv) in dw_row.iter_mut().zip(dz_row) {
                        *dwv += sig * dzv;
                    }
                    for (dbv, &dzv) in shared_grad.db.iter_mut().zip(dz_row) {
                        *dbv += dzv;
                    }
                    // d_aux for the active block: dz · W[block]ᵀ.
                    for k in 0..width {
                        let c = j * width + k;
                        let w_row = shared.w.row(c);
                        let mut acc = 0.0f32;
                        for t in 0..max_card {
                            acc += dz_row[t] * w_row[t];
                        }
                        let v = d_aux.get(r, c) + acc;
                        d_aux.set(r, c, v);
                    }
                }
            }
            let trunk_out = self.trunk_output(&cache);
            let (dx, aux_grad) = aux.backward(trunk_out, aux_out, d_aux);
            add_into(&mut d_trunk, &dx);
            grads_rev.push(shared_grad);
            grads_rev.push(aux_grad);
        }

        // ---- decoder trunk -------------------------------------------------
        let mut dcur = d_trunk;
        for (i, layer) in self.trunk.iter().enumerate().rev() {
            let input = if i == 0 {
                &cache.code
            } else {
                &cache.trunk_acts[i - 1]
            };
            let (dx, g) = layer.backward(input, &cache.trunk_acts[i], dcur);
            grads_rev.push(g);
            dcur = dx;
        }

        // ---- encoder --------------------------------------------------------
        for (i, layer) in self.enc.iter().enumerate().rev() {
            let input = if i == 0 { x } else { &cache.enc_acts[i - 1] };
            let (dx, g) = layer.backward(input, &cache.enc_acts[i], dcur);
            grads_rev.push(g);
            dcur = dx;
        }

        grads_rev.reverse();
        Ok((grads_rev, per_tuple))
    }

    /// Per-tuple loss without computing gradients (gate assignment, eval).
    pub fn loss_per_tuple(&self, x: &Mat, cat_targets: &[Vec<u32>]) -> Result<Vec<f32>> {
        // Forward-only evaluation would duplicate the loss bookkeeping;
        // models here are small enough that reusing train_pass and
        // discarding gradients is simpler and still fast.
        let (_, losses) = self.train_pass(x, cat_targets, None)?;
        Ok(losses)
    }

    fn trunk_dim(&self) -> usize {
        self.trunk
            .last()
            .map(Dense::output_dim)
            .unwrap_or(self.spec.code_size)
    }

    fn trunk_output<'a>(&self, cache: &'a ForwardCache) -> &'a Mat {
        cache.trunk_acts.last().unwrap_or(&cache.code)
    }

    /// All layers in the fixed order matching [`Autoencoder::train_pass`]'s
    /// gradient vector: enc[0..], trunk[0..], aux?, shared?, simple?.
    pub fn layers_mut(&mut self) -> Vec<&mut Dense> {
        let mut v: Vec<&mut Dense> = Vec::new();
        v.extend(self.enc.iter_mut());
        v.extend(self.trunk.iter_mut());
        if let Some(a) = self.aux.as_mut() {
            v.push(a);
        }
        if let Some(s) = self.shared.as_mut() {
            v.push(s);
        }
        if let Some(h) = self.simple_head.as_mut() {
            v.push(h);
        }
        v
    }

    /// Immutable view matching [`Autoencoder::layers_mut`]'s order.
    pub fn layers(&self) -> Vec<&Dense> {
        let mut v: Vec<&Dense> = Vec::new();
        v.extend(self.enc.iter());
        v.extend(self.trunk.iter());
        if let Some(a) = self.aux.as_ref() {
            v.push(a);
        }
        if let Some(s) = self.shared.as_ref() {
            v.push(s);
        }
        if let Some(h) = self.simple_head.as_ref() {
            v.push(h);
        }
        v
    }

    /// Decoder-half layers in serialization order: trunk…, simple?, aux?,
    /// shared? — everything decompression needs (§6.1).
    pub(crate) fn decoder_layers(&self) -> Vec<&Dense> {
        let mut v: Vec<&Dense> = Vec::new();
        v.extend(self.trunk.iter());
        if let Some(h) = self.simple_head.as_ref() {
            v.push(h);
        }
        if let Some(a) = self.aux.as_ref() {
            v.push(a);
        }
        if let Some(s) = self.shared.as_ref() {
            v.push(s);
        }
        v
    }

    /// Builds a decoder-only model from spec + deserialized layers.
    pub(crate) fn from_decoder_parts(spec: ModelSpec, mut layers: Vec<Dense>) -> Result<Self> {
        spec.validate()?;
        let layout = HeadLayout::of(&spec);
        let n_trunk = if spec.linear_single_layer { 0 } else { 2 };
        let mut expected = n_trunk;
        if !layout.simple.is_empty() {
            expected += 1;
        }
        if !layout.cat.is_empty() {
            expected += 2;
        }
        if layers.len() != expected {
            return Err(NnError::Corrupt("decoder layer count mismatch"));
        }
        let trunk: Vec<Dense> = layers.drain(..n_trunk).collect();
        let simple_head = if layout.simple.is_empty() {
            None
        } else {
            Some(layers.remove(0))
        };
        let (aux, shared) = if layout.cat.is_empty() {
            (None, None)
        } else {
            let aux = layers.remove(0);
            let shared = layers.remove(0);
            (Some(aux), Some(shared))
        };
        // The encoder is irrelevant for a decoder-only model, but the type
        // requires one; a 1-layer stub keeps `encode` well-defined (errors
        // are preferable, so the stub maps to the right shape but fresh
        // random weights are avoided by zeroing).
        let enc = vec![Dense {
            w: Mat::zeros(spec.input_dim(), spec.code_size),
            b: vec![0.0; spec.code_size],
            act: Activation::Identity,
        }];
        Ok(Autoencoder {
            spec,
            layout,
            enc,
            trunk,
            simple_head,
            aux,
            shared,
        })
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers().iter().map(|l| l.param_count()).sum()
    }
}

/// Applies the shared output layer for categorical column `j`.
///
/// Logically the shared layer sees the full auxiliary vector plus the
/// signal node, with every inactive column's block masked to zero — the
/// signal node "informs the shared layer how to interpret the values from
/// the auxiliary layer for a particular output" (§5.1). Masked inputs are
/// zero, so the computation reduces to the active `width`-node block, the
/// signal row, and the bias; this avoids materializing a B×(aux+1) matrix
/// per column per batch (the dominant training cost on wide categorical
/// tables otherwise).
fn shared_forward_column(shared: &Dense, aux: &Mat, j: usize, width: usize, signal: f32) -> Mat {
    let b = aux.rows();
    let out_dim = shared.output_dim();
    let n_inputs = shared.input_dim();
    let mut logits = Mat::zeros(b, out_dim);
    let sig_row: Vec<f32> = shared
        .w
        .row(n_inputs - 1)
        .iter()
        .zip(&shared.b)
        .map(|(&w, &bias)| signal * w + bias)
        .collect();
    for r in 0..b {
        let out_row = logits.row_mut(r);
        out_row.copy_from_slice(&sig_row);
        for k in 0..width {
            let c = j * width + k;
            let a = aux.get(r, c);
            if a != 0.0 {
                for (o, &w) in out_row.iter_mut().zip(shared.w.row(c)) {
                    *o += a * w;
                }
            }
        }
    }
    logits
}

/// Softmax over the first `card` entries of each row; the rest become 0.
fn masked_softmax(logits: &Mat, card: usize) -> Mat {
    let mut out = Mat::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row[..card]
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let out_row = out.row_mut(r);
        let mut sum = 0.0;
        for (o, &v) in out_row[..card].iter_mut().zip(&row[..card]) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        if sum > 0.0 {
            let inv = 1.0 / sum;
            for o in &mut out_row[..card] {
                *o *= inv;
            }
        }
    }
    out
}

fn add_into(dst: &mut Mat, src: &Mat) {
    debug_assert_eq!(dst.rows(), src.rows());
    debug_assert_eq!(dst.cols(), src.cols());
    for (d, &s) in dst.data_mut().iter_mut().zip(src.data()) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{AdamConfig, AdamState};
    use rand::Rng;
    use rand::SeedableRng;

    fn mixed_spec() -> ModelSpec {
        ModelSpec::with_defaults(
            vec![
                Head::Numeric,
                Head::Categorical { card: 4 },
                Head::Numeric,
                Head::Binary,
                Head::Categorical { card: 3 },
            ],
            2,
        )
    }

    #[test]
    fn construction_and_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let ae = Autoencoder::new(mixed_spec(), &mut rng).unwrap();
        let x = Mat::zeros(7, 5);
        let code = ae.encode(&x).unwrap();
        assert_eq!((code.rows(), code.cols()), (7, 2));
        let dec = ae.decode(&code).unwrap();
        assert_eq!(dec.simple.cols(), 3); // 2 numeric + 1 binary
        assert_eq!(dec.cat_probs.len(), 2);
        assert_eq!(dec.cat_probs[0].cols(), 4); // padded to max_card=4
        assert_eq!(dec.cat_probs[1].cols(), 4);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Autoencoder::new(ModelSpec::with_defaults(vec![], 2), &mut rng).is_err());
        assert!(
            Autoencoder::new(ModelSpec::with_defaults(vec![Head::Numeric], 0), &mut rng).is_err()
        );
        assert!(Autoencoder::new(
            ModelSpec::with_defaults(vec![Head::Categorical { card: 1 }], 1),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one_within_mask() {
        let logits = Mat::from_vec(2, 4, vec![1.0, 2.0, 3.0, 99.0, -1.0, -2.0, -3.0, 99.0]);
        let p = masked_softmax(&logits, 3);
        for r in 0..2 {
            let s: f32 = p.row(r)[..3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert_eq!(p.get(r, 3), 0.0, "masked entry must be zero");
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut rng = StdRng::seed_from_u64(2);
        let ae = Autoencoder::new(mixed_spec(), &mut rng).unwrap();
        assert!(ae.encode(&Mat::zeros(3, 4)).is_err());
        assert!(ae.decode(&Mat::zeros(3, 9)).is_err());
        let x = Mat::zeros(3, 5);
        // Wrong number of categorical target vectors.
        assert!(ae.train_pass(&x, &[vec![0; 3]], None).is_err());
        // Target code exceeding cardinality.
        let bad = [vec![9u32; 3], vec![0; 3]];
        assert!(ae.train_pass(&x, &bad, None).is_err());
    }

    /// End-to-end gradient check on the full mixed model.
    #[test]
    fn full_model_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ModelSpec {
            numeric_loss_weight: 1.7,
            ..mixed_spec()
        };
        let ae = Autoencoder::new(spec, &mut rng).unwrap();
        let b = 3;
        let mut x = Mat::zeros(b, 5);
        for v in x.data_mut() {
            *v = rng.gen_range(0.0..1.0);
        }
        // Binary column must hold 0/1.
        for r in 0..b {
            let v = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
            x.set(r, 3, v);
        }
        let cat_targets = vec![
            (0..b).map(|r| (r % 4) as u32).collect::<Vec<_>>(),
            (0..b).map(|r| (r % 3) as u32).collect::<Vec<_>>(),
        ];

        let (grads, _) = ae.train_pass(&x, &cat_targets, None).unwrap();
        let layers = ae.layers();
        assert_eq!(grads.len(), layers.len());

        let total_loss = |model: &Autoencoder| -> f32 {
            model.loss_per_tuple(&x, &cat_targets).unwrap().iter().sum()
        };

        let eps = 1e-2f32;
        // Probe a couple of entries in every layer.
        for li in 0..layers.len() {
            let (rows, cols) = (layers[li].w.rows(), layers[li].w.cols());
            for &(r, c) in &[(0usize, 0usize), (rows - 1, cols - 1)] {
                let mut plus = ae.clone();
                {
                    let mut ls = plus.layers_mut();
                    let v = ls[li].w.get(r, c);
                    ls[li].w.set(r, c, v + eps);
                }
                let mut minus = ae.clone();
                {
                    let mut ls = minus.layers_mut();
                    let v = ls[li].w.get(r, c);
                    ls[li].w.set(r, c, v - eps);
                }
                let num = (total_loss(&plus) - total_loss(&minus)) / (2.0 * eps);
                let ana = grads[li].dw.get(r, c);
                assert!(
                    (num - ana).abs() < 0.08 * (1.0 + ana.abs().max(num.abs())),
                    "layer {li} dW[{r},{c}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    /// Training must overfit a tiny dataset (the paper *wants* overfitting).
    #[test]
    fn overfits_small_mixed_dataset() {
        let mut rng = StdRng::seed_from_u64(8);
        let spec = ModelSpec::with_defaults(
            vec![Head::Numeric, Head::Categorical { card: 3 }, Head::Binary],
            2,
        );
        let mut ae = Autoencoder::new(spec, &mut rng).unwrap();
        // 12 tuples with perfectly learnable structure: cat = bucket of
        // numeric, binary = numeric > 0.5.
        let b = 12;
        let mut x = Mat::zeros(b, 3);
        let mut cat = vec![0u32; b];
        for r in 0..b {
            let v = r as f32 / (b - 1) as f32;
            x.set(r, 0, v);
            let c = ((v * 2.999) as u32).min(2);
            cat[r] = c;
            x.set(r, 1, c as f32 / 2.0);
            x.set(r, 2, if v > 0.5 { 1.0 } else { 0.0 });
        }
        let cat_targets = vec![cat.clone()];

        let cfg = AdamConfig {
            lr: 5e-3,
            ..Default::default()
        };
        let mut states: Vec<AdamState> = ae
            .layers()
            .iter()
            .map(|l| AdamState::for_layer(l))
            .collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..2000 {
            let (grads, losses) = ae.train_pass(&x, &cat_targets, None).unwrap();
            let mean: f32 = losses.iter().sum::<f32>() / b as f32;
            if epoch == 0 {
                first = mean;
            }
            last = mean;
            let mut layers = ae.layers_mut();
            for ((layer, grad), st) in layers.iter_mut().zip(&grads).zip(states.iter_mut()) {
                st.step(layer, grad, &cfg);
            }
        }
        assert!(
            last < first * 0.3,
            "training failed to reduce loss: {first} → {last}"
        );
        // Reconstruction should now be decent: categorical argmax mostly
        // right.
        let code = ae.encode(&x).unwrap();
        let dec = ae.decode(&code).unwrap();
        let mut correct = 0;
        for r in 0..b {
            let probs = dec.cat_probs[0].row(r);
            let argmax = (0..3)
                .max_by(|&a, &c| probs[a].total_cmp(&probs[c]))
                .unwrap();
            if argmax as u32 == cat[r] {
                correct += 1;
            }
        }
        assert!(correct >= b * 2 / 3, "only {correct}/{b} correct");
    }

    #[test]
    fn row_weights_scale_gradients() {
        let mut rng = StdRng::seed_from_u64(9);
        let ae = Autoencoder::new(mixed_spec(), &mut rng).unwrap();
        let mut x = Mat::zeros(4, 5);
        for v in x.data_mut() {
            *v = 0.3;
        }
        let cats = vec![vec![0u32; 4], vec![1u32; 4]];
        let (g1, l1) = ae.train_pass(&x, &cats, None).unwrap();
        let (g0, l0) = ae.train_pass(&x, &cats, Some(&[0.0; 4])).unwrap();
        // Zero weights zero every gradient but not the reported loss.
        assert_eq!(l0, l1);
        for (a, b) in g0.iter().zip(&g1) {
            assert!(a.dw.data().iter().all(|&v| v == 0.0));
            assert!(b.dw.data().iter().any(|&v| v != 0.0));
        }
        // Half weights halve gradients.
        let (gh, _) = ae.train_pass(&x, &cats, Some(&[0.5; 4])).unwrap();
        for (h, f) in gh.iter().zip(&g1) {
            for (a, &bv) in h.dw.data().iter().zip(f.dw.data()) {
                assert!((a * 2.0 - bv).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn linear_single_layer_variant_runs() {
        let mut rng = StdRng::seed_from_u64(10);
        let spec = ModelSpec {
            linear_single_layer: true,
            ..mixed_spec()
        };
        let ae = Autoencoder::new(spec, &mut rng).unwrap();
        let x = Mat::zeros(3, 5);
        let code = ae.encode(&x).unwrap();
        assert_eq!(code.cols(), 2);
        let dec = ae.decode(&code).unwrap();
        assert_eq!(dec.simple.cols(), 3);
        let cats = vec![vec![0u32; 3], vec![0u32; 3]];
        let (grads, _) = ae.train_pass(&x, &cats, None).unwrap();
        assert_eq!(grads.len(), ae.layers().len());
    }

    #[test]
    fn param_count_reflects_parameter_sharing() {
        let mut rng = StdRng::seed_from_u64(11);
        // 6 categorical columns of cardinality 50: with sharing, the output
        // stage costs aux (h×6) + shared (7×50); without, it would cost
        // h×300. Verify the model is much smaller than the naive bound.
        let heads: Vec<Head> = (0..6).map(|_| Head::Categorical { card: 50 }).collect();
        let spec = ModelSpec::with_defaults(heads, 2);
        let h = spec.hidden;
        let ae = Autoencoder::new(spec, &mut rng).unwrap();
        let naive_final_layer = h * 300;
        let shared_stage = h * 6 + 6 + 7 * 50 + 50;
        assert!(ae.param_count() < naive_final_layer + 4 * h * h);
        assert!(shared_stage < naive_final_layer / 3);
    }
}
