//! # ds-nn — the neural-network substrate for DeepSqueeze
//!
//! A from-scratch dense neural-network framework implementing exactly what
//! the paper's model construction stage (§5) needs:
//!
//! * [`mat`] — row-major `f32` matrices with the handful of BLAS-like
//!   operations backpropagation requires, backed by AVX2/NEON/scalar
//!   micro-kernels selected at runtime through `ds-simd` (all variants
//!   implement one fixed accumulation schedule, so the selection never
//!   changes an output bit).
//! * [`dense`] — fully connected layers with Xavier initialization.
//! * [`adam`] — the Adam optimizer.
//! * [`autoencoder`] — the paper's autoencoder: a symmetric encoder/decoder
//!   with per-column heads (sigmoid+MSE for numerics, sigmoid+BCE for
//!   binary, and the **parameter-shared categorical output layer with a
//!   signal node** of §5.1 / Fig. 3).
//! * [`moe`] — the sparsely-gated **mixture of experts** (§5.2): a gate
//!   network trained end-to-end with the experts via the differentiable
//!   weighted loss, hard top-1 routing at inference.
//! * [`serialize`] — compact little-endian weight export for the
//!   materialized decoder (§6.1), including the final gzip-like pass.
//!
//! Deliberately not a general DL framework: no autograd graph, no GPU —
//! the models here are small MLPs (hidden width 2× the column count), and
//! a hand-derived backward pass keeps the whole substrate dependency-free
//! and auditable.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit loops

pub mod adam;
pub mod autoencoder;
pub mod dense;
pub mod mat;
pub mod moe;
pub mod serialize;
mod simd;

pub use autoencoder::{Autoencoder, DecodedBatch, Head, ModelSpec};
pub use mat::Mat;
pub use moe::{train_pass_data_parallel, MoeAutoencoder, MoeConfig, TrainReport};

/// Errors surfaced by model construction and weight (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A dimension or hyperparameter was invalid (with detail).
    InvalidSpec(&'static str),
    /// Serialized weights were malformed.
    Corrupt(&'static str),
    /// Input data did not match the model's expected shape.
    ShapeMismatch(&'static str),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::InvalidSpec(what) => write!(f, "invalid model spec: {what}"),
            NnError::Corrupt(what) => write!(f, "corrupt weights: {what}"),
            NnError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;
