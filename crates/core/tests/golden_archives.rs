//! Golden archive fixtures: small committed v1 and v2 containers that pin
//! the byte-level format across refactors.
//!
//! Two invariants are enforced, both directions:
//!
//! * **Decode stability** — the committed archives must keep decoding to
//!   exactly the committed CSV (`expected.csv`), so no refactor can break
//!   old archives in the field.
//! * **Encode stability** — compressing the same deterministic table with
//!   the same config must reproduce the committed archive bytes exactly,
//!   so no refactor silently changes the default wire format. (New
//!   manifest sections are opt-in: `numeric_probe` is off here.)
//!
//! A third fixture (`v2_forged.dsqz`) carries a codec chain with an id
//! from the future and pins the typed `UnknownCodec` error path on every
//! decode entry point — error, never panic.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```text
//! cargo test -p ds-core --test golden_archives -- --ignored
//! ```
//!
//! (Regeneration is deterministic; on an unchanged format it rewrites
//! identical bytes.)

use ds_core::{compress, decompress, decompress_rows, DsArchive, DsConfig, DsError};
use ds_table::csv::write_csv;
use ds_table::gen;
use std::path::PathBuf;

/// A codec id no registry entry will ever claim (the registry reserves
/// nothing near it); forged into `v2_forged.dsqz`.
const FORGED_ID: u16 = 0xBEEF;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = golden_dir().join(name);
    std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e}); see module docs", name))
}

/// The deterministic table behind every fixture: mixed numeric and
/// categorical columns, lossless threshold so the CSV pin is exact.
fn fixture_table() -> ds_table::Table {
    gen::census_like(150, 7)
}

fn v1_cfg() -> DsConfig {
    DsConfig {
        error_threshold: 0.0,
        max_epochs: 3,
        code_size: 2,
        seed: 9,
        ..DsConfig::default()
    }
}

fn v2_cfg() -> DsConfig {
    DsConfig {
        shard_rows: 32,
        ..v1_cfg()
    }
}

#[test]
fn golden_v1_decodes_byte_identically() {
    let archive = DsArchive::from_bytes(read_fixture("v1.dsqz"));
    let restored = decompress(&archive).expect("golden v1 decodes");
    assert_eq!(
        write_csv(&restored).into_bytes(),
        read_fixture("expected.csv"),
        "v1 decode drifted from the committed CSV"
    );
}

#[test]
fn golden_v2_decodes_byte_identically() {
    let archive = DsArchive::from_bytes(read_fixture("v2.dsqz"));
    let restored = decompress(&archive).expect("golden v2 decodes");
    assert_eq!(
        write_csv(&restored).into_bytes(),
        read_fixture("expected.csv"),
        "v2 decode drifted from the committed CSV"
    );
    // Partial reads agree with the full decode.
    let part = decompress_rows(&archive, 40..70).expect("partial read");
    assert_eq!(part, restored.slice_rows(40..70));
}

#[test]
fn compress_reproduces_golden_v1_bytes() {
    let archive = compress(&fixture_table(), &v1_cfg()).expect("compresses");
    assert_eq!(
        archive.as_bytes(),
        &read_fixture("v1.dsqz")[..],
        "default v1 encode bytes drifted from the committed archive"
    );
}

#[test]
fn compress_reproduces_golden_v2_bytes() {
    let archive = compress(&fixture_table(), &v2_cfg()).expect("compresses");
    assert_eq!(
        archive.as_bytes(),
        &read_fixture("v2.dsqz")[..],
        "default v2 encode bytes drifted from the committed archive"
    );
}

#[test]
#[ignore = "regenerates the committed fixtures; run with -- --ignored"]
fn regenerate_golden_fixtures() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create golden dir");
    let t = fixture_table();

    let v1 = compress(&t, &v1_cfg()).expect("v1 compresses");
    std::fs::write(dir.join("v1.dsqz"), v1.as_bytes()).expect("write v1");

    let v2 = compress(&t, &v2_cfg()).expect("v2 compresses");
    std::fs::write(dir.join("v2.dsqz"), v2.as_bytes()).expect("write v2");

    let restored = decompress(&v1).expect("v1 decodes");
    assert_eq!(restored, decompress(&v2).expect("v2 decodes"));
    std::fs::write(dir.join("expected.csv"), write_csv(&restored)).expect("write csv");

    write_forged_fixture(v2.as_bytes(), &dir.join("v2_forged.dsqz"));
}

/// Rebuilds the v2 container with a per-column codec chain carrying
/// [`FORGED_ID`] — structurally valid everywhere except the unknown id,
/// so the typed rejection is attributable to the id alone.
fn write_forged_fixture(v2_bytes: &[u8], path: &std::path::Path) {
    let reader = ds_shard::ShardReader::open(v2_bytes).expect("golden v2 parses");
    let ncols = fixture_table().ncols();
    let mut writer = ds_shard::ShardWriter::new(Vec::new());
    writer.set_shared(reader.shared().to_vec());
    for i in 0..reader.n_shards() {
        let blob = reader.shard_bytes(i).expect("shard bytes").to_vec();
        let rows = reader.entries()[i].rows.len();
        let chains = vec![vec![FORGED_ID]; ncols];
        writer
            .push_shard_with_chains(rows, &blob, chains)
            .expect("push shard");
    }
    let (bytes, _) = writer.finish().expect("finish forged container");
    std::fs::write(path, bytes).expect("write forged fixture");
}

#[test]
fn forged_codec_id_yields_typed_error_on_every_entry_point() {
    let bytes = read_fixture("v2_forged.dsqz");
    let is_unknown = |e: &DsError| {
        matches!(
            e,
            DsError::Shard(ds_shard::ShardError::Codec(
                ds_codec::CodecError::UnknownCodec(id)
            )) if *id == FORGED_ID
        )
    };

    // Full decode.
    let archive = DsArchive::from_bytes(bytes.clone());
    let err = decompress(&archive).expect_err("forged id must not decode");
    assert!(is_unknown(&err), "decompress: {err:?}");

    // Partial decode.
    let err = decompress_rows(&archive, 0..10).expect_err("forged id must not decode");
    assert!(is_unknown(&err), "decompress_rows: {err:?}");

    // Container-level open (what inspect and the shard layer use).
    match ds_shard::ShardReader::open(&bytes) {
        Ok(_) => panic!("ShardReader::open must reject the forged id"),
        Err(ds_shard::ShardError::Codec(ds_codec::CodecError::UnknownCodec(FORGED_ID))) => {}
        Err(err) => panic!("ShardReader::open: wrong error {err:?}"),
    }

    // The serving layer (positioned reads).
    match ds_serve::Archive::open(bytes) {
        Ok(_) => panic!("serve open must reject the forged id"),
        Err(
            err @ ds_serve::ServeError::Shard(ds_shard::ShardError::Codec(
                ds_codec::CodecError::UnknownCodec(FORGED_ID),
            )),
        ) => drop(err),
        Err(err) => panic!("serve: wrong error {err:?}"),
    }
}
