//! Source negotiation end to end: `open_source` feeding the streaming
//! compressor must make `dsqz recompress` equivalent to compressing the
//! underlying rows directly — byte-for-byte, at any thread count.

use ds_core::{
    compress, compress_stream_to, decompress, open_source, open_source_reader, DsArchive, DsConfig,
    SourceKind,
};
use ds_table::csv::write_csv;
use ds_table::gen;
use ds_table::stream::RowSource;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds_core_sources_it_{tag}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn cfg() -> DsConfig {
    DsConfig {
        error_threshold: 0.0,
        max_epochs: 2,
        shard_rows: 40,
        seed: 11,
        ..DsConfig::default()
    }
}

/// Streams `source` through the two-pass compressor, returning the
/// container bytes.
fn recompress(source: &dyn RowSource, cfg: &DsConfig) -> Vec<u8> {
    let mut out = Vec::new();
    compress_stream_to(source, cfg, &mut out).expect("recompresses");
    out
}

#[test]
fn recompress_of_archive_matches_compress_of_csv() {
    let dir = tmp_dir("equiv");
    let t = gen::monitor_like(130, 17);
    let csv = write_csv(&t);
    // The reference table must be what CSV inference reconstructs, so
    // both paths see identical cell types.
    let reparsed = ds_table::csv::read_csv_infer(&csv).expect("reparses");

    let csv_path = dir.join("t.csv");
    std::fs::write(&csv_path, &csv).unwrap();

    let v2 = compress(&reparsed, &cfg()).expect("compresses");
    let v2_path = dir.join("t.v2");
    std::fs::write(&v2_path, v2.as_bytes()).unwrap();

    let v1 = compress(
        &reparsed,
        &DsConfig {
            shard_rows: 0,
            ..cfg()
        },
    )
    .expect("compresses v1");
    let v1_path = dir.join("t.v1");
    std::fs::write(&v1_path, v1.as_bytes()).unwrap();

    // Each input format, each thread count: one set of output bytes.
    let mut reference: Option<Vec<u8>> = None;
    for threads in [1usize, 2, 8] {
        for path in [&csv_path, &v1_path, &v2_path] {
            let bytes = ds_exec::with_thread_limit(threads, || {
                let source = open_source(path, 33).expect("opens");
                recompress(&source, &cfg())
            });
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    &bytes,
                    want,
                    "recompress({}) at {threads} thread(s) diverged",
                    path.display()
                ),
            }
        }
    }

    // And the recompressed container still decodes to the same rows.
    let restored = decompress(&DsArchive::from_bytes(reference.expect("ran"))).expect("decodes");
    assert_eq!(restored, reparsed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stdin_spool_compresses_byte_identically_to_file() {
    let dir = tmp_dir("spool");
    let t = gen::census_like(90, 23);
    let csv = write_csv(&t);
    let path = dir.join("t.csv");
    std::fs::write(&path, &csv).unwrap();

    let from_file = {
        let source = open_source(&path, 28).expect("opens file");
        recompress(&source, &cfg())
    };
    let from_pipe = {
        let source = open_source_reader(csv.as_bytes(), 28).expect("opens pipe");
        assert_eq!(source.kind(), SourceKind::Csv);
        recompress(&source, &cfg())
    };
    assert_eq!(from_file, from_pipe);

    // Piped archives negotiate too: spool a v2 container through the
    // reader path and get the same bytes again.
    let from_archive_pipe = {
        let source = open_source_reader(&from_file[..], 28).expect("opens archive pipe");
        assert_eq!(source.kind(), SourceKind::ArchiveV2);
        recompress(&source, &cfg())
    };
    assert_eq!(from_archive_pipe, from_file);
    let _ = std::fs::remove_dir_all(&dir);
}
