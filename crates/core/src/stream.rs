//! Staged streaming compression: bounded-memory, two-pass pipeline (§3e).
//!
//! The monolithic `&Table` entry points are adapters over the stages in
//! this module, which consume any [`RowSource`] — an iterator of
//! fixed-size [`Table`] chunks that can be rewound for a second pass:
//!
//! 1. **Ingest** (pass 1) — fold every chunk into a mergeable
//!    [`TableStats`] accumulator and, simultaneously, collect a seeded
//!    reservoir sample of rows.
//! 2. **Stats** — convert the accumulator into the per-column plans
//!    whole-table `preprocess` would have fitted (proven equivalent by
//!    the chunked-plan tests in [`crate::preprocess`]).
//! 3. **Train** — fit the mixture on the sample only
//!    ([`TrainedCompressor::train_from_sample`]).
//! 4. **Encode** (pass 2) — re-read the source, regroup chunks into
//!    exact `shard_rows` row groups, and push each encoded group through
//!    the shared [`ds_shard::ShardWriter`] in index order.
//!
//! Peak memory is O(chunk + sample + model), never O(table).
//!
//! ## Determinism contract
//!
//! For a fixed seed, the produced container is byte-identical across
//! `DS_THREADS` settings *and* across chunk sizes. Thread-independence
//! comes from the ordered consume of `parallel_map_consume`;
//! chunk-independence holds because (a) the stats fold visits values in
//! row order regardless of partitioning, (b) the reservoir keeps row `i`
//! based only on `hash(seed, i)` — no per-chunk state — and (c) the
//! regrouper cuts shard boundaries at absolute row multiples of
//! `shard_rows`.

use crate::archive::SizeBreakdown;
use crate::pipeline::{DsConfig, ShardedCompression, TrainedCompressor};
use crate::preprocess::{CatColStats, ColumnStats, NumColStats, TableStats};
use crate::{DsError, Result};
use ds_table::csv::CsvChunks;
use ds_table::stream::{rows_to_table, CsvFileSource, RowSource};
use ds_table::{ColumnType, Field, Schema, Table, TableError};
use std::io::Write;
use std::path::Path;

// ---------------------------------------------------------------------------
// Reservoir: deterministic hash-threshold row selection
// ---------------------------------------------------------------------------

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keeps row `i` iff `hash(seed, i) < frac · 2⁶⁴` — a Bernoulli sample
/// keyed by *absolute* row index, so the selection is identical no matter
/// how the stream is chunked or which thread sees the row. The seed is
/// derived as `cfg.seed ^ 0x5A17`, matching the salt the in-memory
/// trainer uses for its shuffle sample.
struct Reservoir {
    seed: u64,
    threshold: u64,
    all: bool,
}

impl Reservoir {
    fn new(frac: f64, seed: u64) -> Self {
        let all = frac >= 1.0;
        // 2^64 as f64; the cast saturates, so frac → 1 keeps every row.
        let threshold = (frac.max(0.0) * 18_446_744_073_709_551_616.0) as u64;
        Reservoir {
            seed: seed ^ 0x5A17,
            threshold,
            all,
        }
    }

    fn keep(&self, row: u64) -> bool {
        self.all || splitmix64(self.seed ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15)) < self.threshold
    }
}

// ---------------------------------------------------------------------------
// Regrouper: chunk-size-independent shard boundaries
// ---------------------------------------------------------------------------

/// Re-cuts arbitrarily-sized chunks into row groups of exactly
/// `shard_rows` rows (final group possibly short), with boundaries at
/// absolute row multiples of `shard_rows` — the step that makes shard
/// bytes independent of the reader's chunk size.
struct Regrouper {
    shard_rows: usize,
    buf: Vec<Table>,
    buffered: usize,
}

impl Regrouper {
    fn new(shard_rows: usize) -> Self {
        Regrouper {
            shard_rows: shard_rows.max(1),
            buf: Vec::new(),
            buffered: 0,
        }
    }

    /// Absorbs one chunk; returns every complete group it closed.
    fn push(&mut self, chunk: Table) -> Result<Vec<Table>> {
        if chunk.nrows() == 0 {
            return Ok(Vec::new());
        }
        // Fast path: aligned chunk, nothing buffered — pass it through
        // (the in-memory adapter always lands here: chunk == shard).
        if self.buf.is_empty() && chunk.nrows() == self.shard_rows {
            return Ok(vec![chunk]);
        }
        self.buffered += chunk.nrows();
        self.buf.push(chunk);
        if self.buffered < self.shard_rows {
            return Ok(Vec::new());
        }
        let merged = Table::concat(&self.buf).map_err(DsError::Table)?;
        self.buf.clear();
        let mut out = Vec::new();
        let mut lo = 0usize;
        while lo + self.shard_rows <= merged.nrows() {
            out.push(merged.slice_rows(lo..lo + self.shard_rows));
            lo += self.shard_rows;
        }
        let rest = merged.slice_rows(lo..merged.nrows());
        self.buffered = rest.nrows();
        if rest.nrows() > 0 {
            self.buf.push(rest);
        }
        Ok(out)
    }

    /// The final short group, if any rows remain buffered.
    fn finish(&mut self) -> Result<Option<Table>> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        self.buffered = 0;
        if self.buf.len() == 1 {
            return Ok(self.buf.pop());
        }
        let merged = Table::concat(&self.buf).map_err(DsError::Table)?;
        self.buf.clear();
        Ok(Some(merged))
    }
}

// ---------------------------------------------------------------------------
// The staged pipeline
// ---------------------------------------------------------------------------

fn validate_cfg(cfg: &DsConfig) -> Result<()> {
    if cfg.shard_rows == 0 {
        return Err(DsError::InvalidConfig("shard_rows must be > 0"));
    }
    if cfg.order_free {
        // Shard blobs carry patches addressed by row index; order-free
        // storage would scramble them (same rule as compress_batch).
        return Err(DsError::InvalidConfig(
            "order-free storage is incompatible with sharding",
        ));
    }
    if !(0.0..=1.0).contains(&cfg.sample_frac) || cfg.sample_frac == 0.0 {
        return Err(DsError::InvalidConfig("sample_frac must be in (0,1]"));
    }
    Ok(())
}

/// Guarantees training sees at least one row: a tiny `sample_frac` can
/// leave the reservoir empty, in which case the source's first row is
/// used — deterministic across chunk sizes, since row 0 is row 0 in
/// every partition.
fn finalize_sample(source: &dyn RowSource, sample: Table, total_rows: usize) -> Result<Table> {
    let mut sp = ds_obs::span("reservoir");
    let mut sample = sample;
    if sample.nrows() == 0 && total_rows > 0 {
        if let Some(first) = source.chunks()?.next() {
            sample = first?.slice_rows(0..1);
        }
    }
    sp.add("rows", sample.nrows() as u64);
    Ok(sample)
}

/// Compresses any [`RowSource`] into a v2 sharded container via the
/// staged two-pass pipeline (see module docs). `compress_sharded_to` is a
/// thin adapter over this function; true streaming callers hand in a
/// [`CsvFileSource`] (or use [`compress_csv_stream_to`], which also
/// infers the schema in its first pass).
pub fn compress_stream_to<W: Write>(
    source: &dyn RowSource,
    cfg: &DsConfig,
    sink: W,
) -> Result<ShardedCompression<W>> {
    validate_cfg(cfg)?;
    // The root span opens before ingest so every stage nests under it; its
    // id is captured for the per-shard encode spans, which run on pool
    // workers where this thread's span stack is not visible.
    let root = ds_obs::span("compress");
    let root_id = root.id();
    let schema = source.schema().clone();
    let opts = cfg.preprocess_options(schema.len())?;
    let reservoir = Reservoir::new(cfg.sample_frac, cfg.seed);

    // Pass 1: one-pass stats fold + reservoir selection.
    let mut stats = TableStats::new(&schema, &opts)?;
    let mut parts: Vec<Table> = Vec::new();
    {
        let mut sp = ds_obs::span("ingest");
        let mut n_chunks = 0u64;
        let mut row_base = 0u64;
        for chunk in source.chunks()? {
            let chunk = chunk?;
            n_chunks += 1;
            ds_obs::gauge_max("stream.peak_chunk_bytes", 0, chunk.mem_size() as u64);
            stats.update(&chunk)?;
            let n = chunk.nrows();
            if reservoir.all {
                if n > 0 {
                    parts.push(chunk);
                }
            } else {
                let picked: Vec<usize> = (0..n)
                    .filter(|&r| reservoir.keep(row_base + r as u64))
                    .collect();
                if !picked.is_empty() {
                    parts.push(chunk.take(&picked));
                }
            }
            row_base += n as u64;
        }
        sp.add("rows", row_base);
        sp.add("chunks", n_chunks);
    }
    let total_rows = stats.rows();
    let plans = {
        let _sp = ds_obs::span("stats");
        stats.into_plans()?
    };
    let sample = if parts.is_empty() {
        Table::empty(schema.clone())
    } else if parts.len() == 1 {
        match parts.pop() {
            Some(t) => t,
            None => Table::empty(schema.clone()),
        }
    } else {
        let merged = Table::concat(&parts).map_err(DsError::Table)?;
        parts.clear();
        merged
    };
    let sample = finalize_sample(source, sample, total_rows)?;
    let trained = TrainedCompressor::train_from_sample(&plans, &sample, total_rows, cfg)?;
    drop(sample);

    // Pass 2: re-read, regroup, encode, stream out.
    write_shards(
        source,
        &trained,
        cfg.shard_rows,
        total_rows,
        &schema,
        root_id,
        sink,
    )
}

/// One window of complete row groups: encode on the pool, push into the
/// writer in index order. `shard_base`/`rows_base` are the global shard
/// index and row offset of `groups[0]`.
fn encode_window<W: Write>(
    trained: &TrainedCompressor,
    groups: &[Table],
    shard_base: usize,
    rows_base: usize,
    root_id: ds_obs::SpanId,
    writer: &mut ds_shard::ShardWriter<W>,
    breakdown: &mut SizeBreakdown,
) -> Result<()> {
    let mut offsets = Vec::with_capacity(groups.len());
    let mut lo = rows_base;
    for g in groups {
        offsets.push(lo);
        lo += g.nrows();
    }
    let mut first_err: Option<DsError> = None;
    // A failing shard's error names the shard and its row range — "shard
    // 7 (rows 448..512): …" — instead of surfacing as a bare codec error.
    let shard_failed = |j: usize, e: DsError| {
        let lo = offsets.get(j).copied().unwrap_or(rows_base);
        let rows = groups.get(j).map(Table::nrows).unwrap_or(0);
        DsError::ShardFailed {
            shard: shard_base + j,
            rows: lo..lo + rows,
            source: Box::new(e),
        }
    };
    ds_exec::parallel_map_consume(
        groups.len(),
        |j| {
            let mut sp = ds_obs::span_under(root_id, "shard", (shard_base + j) as u64);
            match groups.get(j) {
                Some(g) => {
                    sp.add("rows", g.nrows() as u64);
                    trained.compress_batch_opts(g, true)
                }
                None => Err(DsError::InvalidConfig(
                    "internal: window index out of range",
                )),
            }
        },
        |j, result| {
            if first_err.is_some() {
                return;
            }
            match result {
                Ok(archive) => {
                    let b = archive.breakdown();
                    breakdown.codes += b.codes;
                    breakdown.failures += b.failures;
                    let rows = groups.get(j).map(Table::nrows).unwrap_or(0);
                    // Record per-column codec chains in the manifest only
                    // when the probe is on: the default path must produce
                    // byte-identical containers to earlier builds.
                    let push = if trained.cfg().numeric_probe {
                        writer.push_shard_with_chains(
                            rows,
                            archive.as_bytes(),
                            archive.column_chains().to_vec(),
                        )
                    } else {
                        writer.push_shard(rows, archive.as_bytes())
                    };
                    if let Err(e) = push {
                        first_err = Some(shard_failed(j, e.into()));
                    }
                }
                Err(e) => first_err = Some(shard_failed(j, e)),
            }
        },
    );
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Pass 2: re-read `source`, cut `shard_rows` groups, and encode them in
/// bounded windows (2× the pool width) so at most O(window · shard) rows
/// are resident while later chunks are still being read.
fn write_shards<W: Write>(
    source: &dyn RowSource,
    trained: &TrainedCompressor,
    shard_rows: usize,
    total_rows: usize,
    schema: &Schema,
    root_id: ds_obs::SpanId,
    sink: W,
) -> Result<ShardedCompression<W>> {
    let shared = trained.decoder_blob();
    let mut breakdown = SizeBreakdown {
        decoder: shared.len(),
        ..Default::default()
    };
    let mut writer = ds_shard::ShardWriter::new(sink);
    writer.set_shared(shared);
    // Window size only affects scheduling, never bytes: groups are always
    // consumed in global index order.
    let window = ds_exec::effective_threads().saturating_mul(2).max(2);
    let mut regroup = Regrouper::new(shard_rows);
    let mut pending: Vec<Table> = Vec::new();
    let mut shard_base = 0usize;
    let mut rows_flushed = 0usize;
    let mut rows_seen = 0usize;
    let flush = |pending: &mut Vec<Table>,
                 shard_base: &mut usize,
                 rows_flushed: &mut usize,
                 take: usize,
                 writer: &mut ds_shard::ShardWriter<W>,
                 breakdown: &mut SizeBreakdown|
     -> Result<()> {
        let groups: Vec<Table> = pending.drain(..take.min(pending.len())).collect();
        encode_window(
            trained,
            &groups,
            *shard_base,
            *rows_flushed,
            root_id,
            writer,
            breakdown,
        )?;
        *shard_base += groups.len();
        *rows_flushed += groups.iter().map(Table::nrows).sum::<usize>();
        Ok(())
    };
    for chunk in source.chunks()? {
        let chunk = chunk?;
        rows_seen += chunk.nrows();
        pending.extend(regroup.push(chunk)?);
        while pending.len() >= window {
            flush(
                &mut pending,
                &mut shard_base,
                &mut rows_flushed,
                window,
                &mut writer,
                &mut breakdown,
            )?;
        }
    }
    if rows_seen != total_rows {
        // The two passes disagree: the underlying data changed between
        // them (file rewritten mid-compression, non-rewindable source...).
        return Err(DsError::InvalidConfig("row source changed between passes"));
    }
    if let Some(tail) = regroup.finish()? {
        pending.push(tail);
    }
    if total_rows == 0 && shard_base == 0 && pending.is_empty() {
        // An empty source still gets one (zero-row) shard so the
        // container self-describes the schema.
        pending.push(Table::empty(schema.clone()));
    }
    while !pending.is_empty() {
        flush(
            &mut pending,
            &mut shard_base,
            &mut rows_flushed,
            window,
            &mut writer,
            &mut breakdown,
        )?;
    }
    let (sink, total_bytes) = writer.finish()?;
    let accounted = breakdown.decoder + breakdown.codes + breakdown.failures;
    breakdown.metadata = (total_bytes as usize).saturating_sub(accounted);
    Ok(ShardedCompression {
        sink,
        total_bytes,
        n_shards: shard_base,
        breakdown,
    })
}

// ---------------------------------------------------------------------------
// CSV front end: schema inference + compression in two file passes
// ---------------------------------------------------------------------------

/// Pass-1 census facts of a CSV streaming compression.
pub struct CsvStreamInfo {
    /// Data rows in the file (header excluded).
    pub rows: usize,
    /// Schema inferred by the probe — identical to what
    /// `ds_table::csv::read_csv_infer` infers on the whole file.
    pub schema: Schema,
}

/// Dual-mode per-column probe: numeric and categorical statistics are
/// tracked simultaneously during pass 1 because the column's type is not
/// known until every cell has been seen.
struct ColProbe {
    num: NumColStats,
    cat: CatColStats,
    numeric_failures: u64,
}

impl ColProbe {
    fn new(track_distinct: bool) -> Self {
        ColProbe {
            num: NumColStats::new(track_distinct),
            cat: CatColStats::new(),
            numeric_failures: 0,
        }
    }

    fn push(&mut self, value: &str) {
        self.cat.push(value);
        // Same cell test as read_csv_infer: finite f64 after trimming.
        match value.trim().parse::<f64>().ok().filter(|x| x.is_finite()) {
            Some(x) => self.num.push(x),
            None => self.numeric_failures += 1,
        }
    }
}

/// Streaming CSV compression: reads the file twice with `chunk_rows` rows
/// resident at a time. Pass 1 infers the schema (with `read_csv_infer`'s
/// exact rules), folds column statistics, and reservoir-samples training
/// rows; pass 2 re-reads and encodes shard row groups. For a fixed seed
/// the output is byte-identical to loading the whole file and calling
/// [`crate::compress_sharded_to`] with the same config.
pub fn compress_csv_stream_to<W: Write>(
    path: &Path,
    cfg: &DsConfig,
    chunk_rows: usize,
    sink: W,
) -> Result<(ShardedCompression<W>, CsvStreamInfo)> {
    validate_cfg(cfg)?;
    let chunk_rows = chunk_rows.max(1);
    let root = ds_obs::span("compress");
    let root_id = root.id();

    // Pass 1 runs over raw string records (the schema is not yet known).
    let file = std::fs::File::open(path).map_err(|e| TableError::Io(e.to_string()))?;
    let mut chunks = CsvChunks::new(std::io::BufReader::new(file), chunk_rows)?;
    let header: Vec<String> = chunks.header().to_vec();
    if header.iter().any(String::is_empty) {
        return Err(DsError::Table(TableError::Csv {
            line: 1,
            what: "empty column name in header",
        }));
    }
    let opts = cfg.preprocess_options(header.len())?;
    let reservoir = Reservoir::new(cfg.sample_frac, cfg.seed);
    let mut probes: Vec<ColProbe> = opts
        .error_thresholds
        .iter()
        .map(|&e| ColProbe::new(e == 0.0 && opts.quantize_numerics))
        .collect();
    let mut sample_rows: Vec<Vec<String>> = Vec::new();
    let mut total_rows = 0usize;
    {
        let mut sp = ds_obs::span("ingest");
        let mut n_chunks = 0u64;
        while let Some(records) = chunks.next_chunk()? {
            n_chunks += 1;
            let mut chunk_bytes = 0usize;
            for (r, record) in records.iter().enumerate() {
                for (value, probe) in record.iter().zip(probes.iter_mut()) {
                    chunk_bytes += value.len() + 24;
                    probe.push(value);
                }
                if reservoir.keep((total_rows + r) as u64) {
                    sample_rows.push(record.clone());
                }
            }
            total_rows += records.len();
            ds_obs::gauge_max("stream.peak_chunk_bytes", 0, chunk_bytes as u64);
        }
        sp.add("rows", total_rows as u64);
        sp.add("chunks", n_chunks);
    }
    drop(chunks);

    // Resolve each column exactly as read_csv_infer does: numeric iff the
    // column is non-empty and every cell parsed as a finite number.
    let fields: Vec<Field> = header
        .iter()
        .zip(&probes)
        .map(|(name, p)| {
            if total_rows > 0 && p.numeric_failures == 0 {
                Field::numeric(name.clone())
            } else {
                Field::categorical(name.clone())
            }
        })
        .collect();
    let schema = Schema::new(fields).map_err(DsError::Table)?;
    let cols: Vec<ColumnStats> = schema
        .fields()
        .iter()
        .zip(probes)
        .map(|(f, p)| match f.ty {
            ColumnType::Numeric => ColumnStats::Num(p.num),
            ColumnType::Categorical => ColumnStats::Cat(p.cat),
        })
        .collect();
    let stats = TableStats::from_parts(schema.clone(), opts, cols, total_rows)?;
    let plans = {
        let _sp = ds_obs::span("stats");
        stats.into_plans()?
    };

    let source = CsvFileSource::new(path, schema.clone(), chunk_rows);
    // Typed conversion of the sampled rows cannot hit numeric parse
    // errors: a column is only numeric when every cell parsed in pass 1.
    let sample = rows_to_table(&schema, sample_rows, 0).map_err(DsError::Table)?;
    let sample = finalize_sample(&source, sample, total_rows)?;
    let trained = TrainedCompressor::train_from_sample(&plans, &sample, total_rows, cfg)?;
    drop(sample);

    let out = write_shards(
        &source,
        &trained,
        cfg.shard_rows,
        total_rows,
        &schema,
        root_id,
        sink,
    )?;
    Ok((
        out,
        CsvStreamInfo {
            rows: total_rows,
            schema,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress_sharded_to, decompress, DsArchive};
    use ds_table::gen;
    use ds_table::stream::TableSource;

    fn quick_cfg() -> DsConfig {
        DsConfig {
            error_threshold: 0.05,
            max_epochs: 3,
            shard_rows: 16,
            seed: 9,
            ..DsConfig::default()
        }
    }

    #[test]
    fn reservoir_keys_on_absolute_row_index() {
        let full = Reservoir::new(1.0, 7);
        assert!((0..100).all(|i| full.keep(i)));

        let half = Reservoir::new(0.5, 7);
        let a: Vec<bool> = (0..10_000).map(|i| half.keep(i)).collect();
        let b: Vec<bool> = (0..10_000).map(|i| half.keep(i)).collect();
        assert_eq!(a, b); // pure function of (seed, index)
        let kept = a.iter().filter(|&&k| k).count();
        assert!((3_500..6_500).contains(&kept), "kept {kept} of 10000");
        // Different seed, different selection.
        let other: Vec<bool> = (0..10_000)
            .map(|i| Reservoir::new(0.5, 8).keep(i))
            .collect();
        assert_ne!(a, other);
    }

    #[test]
    fn regrouper_boundaries_are_chunk_size_independent() {
        let t = gen::monitor_like(100, 3);
        let cut = |chunk: usize| -> Vec<Table> {
            let mut rg = Regrouper::new(16);
            let mut groups = Vec::new();
            let src = TableSource::new(&t, chunk);
            for c in src.chunks().unwrap() {
                groups.extend(rg.push(c.unwrap()).unwrap());
            }
            if let Some(tail) = rg.finish().unwrap() {
                groups.push(tail);
            }
            groups
        };
        let reference = cut(16);
        assert_eq!(
            reference.iter().map(Table::nrows).collect::<Vec<_>>(),
            [16, 16, 16, 16, 16, 16, 4]
        );
        for chunk in [1, 7, 16, 23, 64, 101] {
            let groups = cut(chunk);
            assert_eq!(groups.len(), reference.len(), "chunk={chunk}");
            for (g, r) in groups.iter().zip(&reference) {
                assert_eq!(g, r, "chunk={chunk}");
            }
        }
    }

    #[test]
    fn streaming_bytes_match_in_memory_adapter_across_chunk_sizes() {
        let t = gen::census_like(200, 11);
        let cfg = quick_cfg();
        let reference = compress_sharded_to(&t, &cfg, Vec::new()).unwrap();
        for chunk in [1, 7, 64, 201] {
            let src = TableSource::new(&t, chunk);
            let out = compress_stream_to(&src, &cfg, Vec::new()).unwrap();
            assert_eq!(out.sink, reference.sink, "chunk={chunk}");
            assert_eq!(out.n_shards, reference.n_shards);
        }
        // And the container still decompresses to the right table shape.
        let archive = DsArchive {
            bytes: reference.sink,
            breakdown: reference.breakdown,
            failure_stats: Vec::new(),
            column_chains: Vec::new(),
        };
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), t.nrows());
    }

    #[test]
    fn empty_source_still_writes_one_shard() {
        let t = gen::monitor_like(10, 1).slice_rows(0..0);
        let src = TableSource::new(&t, 8);
        let out = compress_stream_to(&src, &quick_cfg(), Vec::new()).unwrap();
        assert_eq!(out.n_shards, 1);
        let archive = DsArchive {
            bytes: out.sink,
            breakdown: out.breakdown,
            failure_stats: Vec::new(),
            column_chains: Vec::new(),
        };
        assert_eq!(decompress(&archive).unwrap().nrows(), 0);
    }

    #[test]
    fn changing_source_between_passes_is_detected() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Shrinking {
            table: Table,
            passes: AtomicUsize,
        }
        impl RowSource for Shrinking {
            fn schema(&self) -> &Schema {
                self.table.schema()
            }
            fn chunk_rows(&self) -> usize {
                8
            }
            fn chunks(
                &self,
            ) -> ds_table::Result<Box<dyn Iterator<Item = ds_table::Result<Table>> + '_>>
            {
                let pass = self.passes.fetch_add(1, Ordering::SeqCst);
                let rows = if pass == 0 { 20 } else { 15 };
                Ok(Box::new(std::iter::once(Ok(self
                    .table
                    .slice_rows(0..rows)))))
            }
        }

        let src = Shrinking {
            table: gen::monitor_like(20, 5),
            passes: AtomicUsize::new(0),
        };
        let err = match compress_stream_to(&src, &quick_cfg(), Vec::new()) {
            Err(e) => e,
            Ok(_) => panic!("expected pass mismatch to fail"),
        };
        assert!(matches!(err, DsError::InvalidConfig(m) if m.contains("between passes")));
    }

    #[test]
    fn stream_rejects_bad_configs() {
        let t = gen::monitor_like(10, 1);
        let src = TableSource::new(&t, 4);
        let no_shards = DsConfig {
            shard_rows: 0,
            ..quick_cfg()
        };
        assert!(compress_stream_to(&src, &no_shards, Vec::new()).is_err());
        let order_free = DsConfig {
            order_free: true,
            ..quick_cfg()
        };
        assert!(compress_stream_to(&src, &order_free, Vec::new()).is_err());
        let bad_frac = DsConfig {
            sample_frac: 0.0,
            ..quick_cfg()
        };
        assert!(compress_stream_to(&src, &bad_frac, Vec::new()).is_err());
    }

    #[test]
    fn sampled_streaming_archive_roundtrips() {
        let t = gen::forest_like(300, 4);
        let cfg = DsConfig {
            sample_frac: 0.1,
            ..quick_cfg()
        };
        let src = TableSource::new(&t, 37);
        let out = compress_stream_to(&src, &cfg, Vec::new()).unwrap();
        // Chunk-size invariance holds with sampling too: the reservoir is
        // keyed by absolute row index, not by chunk.
        let again = compress_stream_to(&TableSource::new(&t, 301), &cfg, Vec::new()).unwrap();
        assert_eq!(out.sink, again.sink);
        // Sampling only changes what the model trains on; reconstruction
        // guarantees are plan-level and must hold for every row.
        let archive = DsArchive {
            bytes: out.sink,
            breakdown: out.breakdown,
            failure_stats: Vec::new(),
            column_chains: Vec::new(),
        };
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), t.nrows());
    }
}
