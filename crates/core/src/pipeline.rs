//! The end-to-end compression and decompression pipelines (§3).

use crate::archive::{DsArchive, SizeBreakdown, MAGIC, VERSION};
use crate::materialize::{
    class_at_rank, dequantize_codes, materialize, MappingStrategy, MaterializeOptions,
};
use crate::preprocess::{preprocess, ColPlan, PreprocessOptions, Preprocessed};
use crate::{DsError, Result};
use ds_codec::{delta, gzlike, parq, rle, ByteReader};
use ds_nn::autoencoder::DecodedBatch;
use ds_nn::moe::{MoeConfig, TrainReport};
use ds_nn::{serialize, ModelSpec, MoeAutoencoder};
use ds_table::{Column, ColumnType, Table};

/// All DeepSqueeze knobs in one place. `Default` matches the paper's
/// stated defaults where it states them (two hidden layers of 2× the
/// column count, quantization on, single expert until tuned).
#[derive(Debug, Clone)]
pub struct DsConfig {
    /// Uniform relative error bound for numeric columns (fraction of each
    /// column's range; 0 = lossless).
    pub error_threshold: f64,
    /// Optional per-column thresholds overriding the uniform one (must
    /// have one entry per column; entries for categorical columns are
    /// ignored).
    pub per_column_errors: Option<Vec<f64>>,
    /// Representation-layer width — hyperparameter #1 (§5.4).
    pub code_size: usize,
    /// Number of mixture experts — hyperparameter #2 (§5.4).
    pub n_experts: usize,
    /// Training epochs cap.
    pub max_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-epoch multiplicative learning-rate decay (1.0 = constant).
    pub lr_decay: f32,
    /// Convergence tolerance (relative epoch-loss improvement).
    pub tol: f32,
    /// Seed for everything stochastic.
    pub seed: u64,
    /// Fraction of rows used for training (§5.3/§7.4.4); materialization
    /// always covers the full table.
    pub sample_frac: f64,
    /// High-cardinality fallback threshold (§4.1).
    pub high_card_ratio: f64,
    /// Skew clipping: maximum model classes per categorical column (§4.1).
    pub max_train_card: usize,
    /// Fig. 7 ablation: single linear layer baseline.
    pub linear_single_layer: bool,
    /// Fig. 7 ablation: disable numeric quantization.
    pub quantize_numerics: bool,
    /// Relative weight of numeric MSE vs categorical cross-entropy.
    pub numeric_loss_weight: f32,
    /// Candidate code widths for §6.2 truncation.
    pub code_bits_candidates: Vec<u8>,
    /// §6.4 order-free storage (relational tables).
    pub order_free: bool,
    /// Mantissa bits zeroed from trained weights before materialization
    /// (16 = bf16-like; 0 disables). Shrinks the gzip-compressed decoder
    /// roughly 2× at negligible accuracy cost.
    pub weight_truncate_bits: u32,
    /// Rows per shard for the v2 sharded container (0 = legacy
    /// single-blob archive). When > 0, [`compress`] trains one model on
    /// the whole table, then compresses each fixed-row-count row group
    /// independently on the pool and lays them out so decompression can
    /// decode shards in parallel — or only those intersecting a requested
    /// row range ([`decompress_rows`]).
    pub shard_rows: usize,
    /// Let the per-chunk constant/FoR numeric model
    /// ([`ds_codec::registry::FOR_MODEL`]) compete for u32 streams. Off
    /// by default so archive bytes stay identical to earlier builds;
    /// when on, sharded containers record the per-column codec chains in
    /// their manifest so readers can negotiate (an unknown id surfaces
    /// as a typed `UnknownCodec` error, never a misparse).
    pub numeric_probe: bool,
}

impl Default for DsConfig {
    fn default() -> Self {
        DsConfig {
            error_threshold: 0.0,
            per_column_errors: None,
            code_size: 2,
            n_experts: 1,
            max_epochs: 120,
            batch_size: 128,
            lr: 4e-3,
            lr_decay: 0.997,
            tol: 5e-4,
            seed: 0,
            sample_frac: 1.0,
            high_card_ratio: 0.5,
            max_train_card: 256,
            linear_single_layer: false,
            quantize_numerics: true,
            numeric_loss_weight: 2.0,
            code_bits_candidates: vec![4, 8, 16],
            order_free: false,
            weight_truncate_bits: 16,
            shard_rows: 0,
            numeric_probe: false,
        }
    }
}

impl DsConfig {
    pub(crate) fn preprocess_options(&self, ncols: usize) -> Result<PreprocessOptions> {
        let error_thresholds = match &self.per_column_errors {
            Some(v) => {
                if v.len() != ncols {
                    return Err(DsError::InvalidConfig("per_column_errors arity mismatch"));
                }
                v.clone()
            }
            None => vec![self.error_threshold; ncols],
        };
        Ok(PreprocessOptions {
            error_thresholds,
            high_card_ratio: self.high_card_ratio,
            max_train_card: self.max_train_card,
            quantize_numerics: self.quantize_numerics,
        })
    }
}

/// A trained model plus the preprocessing state it was fitted with —
/// separate from [`compress`] so benchmarks can time training and
/// materialization independently, and so the streaming scenario (§3) can
/// reuse one model across batches.
pub struct TrainedCompressor {
    pub(crate) prep: Preprocessed,
    pub(crate) model: Option<MoeAutoencoder>,
    /// Training diagnostics (empty when the table had no model-visible
    /// columns).
    pub report: TrainReport,
    cfg: DsConfig,
    nrows: usize,
}

impl TrainedCompressor {
    /// Trains a compressor on `table` under `cfg`.
    pub fn train(table: &Table, cfg: &DsConfig) -> Result<Self> {
        if !(0.0..=1.0).contains(&cfg.sample_frac) || cfg.sample_frac == 0.0 {
            return Err(DsError::InvalidConfig("sample_frac must be in (0,1]"));
        }
        let prep = {
            let mut sp = ds_obs::span("preprocess");
            let prep = preprocess(table, &cfg.preprocess_options(table.ncols())?)?;
            sp.add("rows", table.nrows() as u64);
            sp.add("cols", table.ncols() as u64);
            prep
        };

        let model = if prep.model_cols.is_empty() || table.nrows() == 0 {
            None
        } else {
            let spec = ModelSpec {
                heads: prep.heads.clone(),
                code_size: cfg.code_size,
                hidden: (prep.heads.len() * 2).max(4),
                linear_single_layer: cfg.linear_single_layer,
                numeric_loss_weight: cfg.numeric_loss_weight,
                aux_width: 4,
            };
            let moe_cfg = MoeConfig {
                n_experts: cfg.n_experts,
                batch_size: cfg.batch_size,
                max_epochs: cfg.max_epochs,
                tol: cfg.tol,
                lr: cfg.lr,
                lr_decay: cfg.lr_decay,
                seed: cfg.seed,
            };
            let (x_train, cat_train) = if cfg.sample_frac < 1.0 {
                let target = ((table.nrows() as f64 * cfg.sample_frac).ceil() as usize)
                    .clamp(1, table.nrows());
                // Seeded sample of row indexes.
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x5A17);
                let mut idx: Vec<usize> = (0..table.nrows()).collect();
                idx.shuffle(&mut rng);
                idx.truncate(target);
                let x = prep.x.take_rows(&idx);
                let cats = prep
                    .cat_targets
                    .iter()
                    .map(|t| idx.iter().map(|&i| t[i]).collect())
                    .collect();
                (x, cats)
            } else {
                (prep.x.clone(), prep.cat_targets.clone())
            };
            let (mut model, report) = {
                let mut sp = ds_obs::span("train");
                let out = MoeAutoencoder::train(&spec, &x_train, &cat_train, &moe_cfg)?;
                sp.add("rows", x_train.rows() as u64);
                sp.add("epochs", out.1.epochs_run as u64);
                out
            };
            if cfg.weight_truncate_bits > 0 {
                if cfg.weight_truncate_bits >= 24 {
                    return Err(DsError::InvalidConfig("weight_truncate_bits must be < 24"));
                }
                model.truncate_weights(cfg.weight_truncate_bits);
            }
            return Ok(TrainedCompressor {
                prep,
                model: Some(model),
                report,
                cfg: cfg.clone(),
                nrows: table.nrows(),
            });
        };

        Ok(TrainedCompressor {
            prep,
            model,
            report: TrainReport::default(),
            cfg: cfg.clone(),
            nrows: table.nrows(),
        })
    }

    /// The trained mixture (None when the table had no model-visible
    /// columns or no rows).
    pub fn model(&self) -> Option<&MoeAutoencoder> {
        self.model.as_ref()
    }

    /// Assembles a compressor from externally trained parts (the k-means
    /// comparator builds its mixture outside the gate-training path).
    pub(crate) fn from_parts(
        prep: Preprocessed,
        model: Option<MoeAutoencoder>,
        cfg: DsConfig,
        nrows: usize,
    ) -> Self {
        TrainedCompressor {
            prep,
            model,
            report: TrainReport::default(),
            cfg,
            nrows,
        }
    }

    /// Trains on an already-selected sample under already-fitted column
    /// plans — stage three of the streaming pipeline, where the plans come
    /// from a one-pass [`crate::preprocess::TableStats`] fold and the
    /// sample from a deterministic reservoir. `total_rows` is the full
    /// source's row count (the sample may be much smaller); it becomes the
    /// compressor's `nrows` so shard accounting sees the real table size.
    ///
    /// With `sample == table` this is behaviourally identical to
    /// [`train`](Self::train) at `sample_frac = 1.0`: the plans fitted by
    /// the chunked fold match whole-table `preprocess` exactly, and the
    /// model sees the same matrix in the same order.
    pub(crate) fn train_from_sample(
        plans: &[ColPlan],
        sample: &Table,
        total_rows: usize,
        cfg: &DsConfig,
    ) -> Result<Self> {
        let (prep, _patches) = {
            let mut sp = ds_obs::span("apply_plans");
            let out = crate::preprocess::apply_plans(sample, plans)?;
            sp.add("rows", sample.nrows() as u64);
            out
        };
        if prep.model_cols.is_empty() || total_rows == 0 || sample.nrows() == 0 {
            return Ok(TrainedCompressor {
                prep,
                model: None,
                report: TrainReport::default(),
                cfg: cfg.clone(),
                nrows: total_rows,
            });
        }
        let spec = ModelSpec {
            heads: prep.heads.clone(),
            code_size: cfg.code_size,
            hidden: (prep.heads.len() * 2).max(4),
            linear_single_layer: cfg.linear_single_layer,
            numeric_loss_weight: cfg.numeric_loss_weight,
            aux_width: 4,
        };
        let moe_cfg = MoeConfig {
            n_experts: cfg.n_experts,
            batch_size: cfg.batch_size,
            max_epochs: cfg.max_epochs,
            tol: cfg.tol,
            lr: cfg.lr,
            lr_decay: cfg.lr_decay,
            seed: cfg.seed,
        };
        let (mut model, report) = {
            let mut sp = ds_obs::span("train");
            let out = MoeAutoencoder::train(&spec, &prep.x, &prep.cat_targets, &moe_cfg)?;
            sp.add("rows", prep.x.rows() as u64);
            sp.add("epochs", out.1.epochs_run as u64);
            out
        };
        if cfg.weight_truncate_bits > 0 {
            if cfg.weight_truncate_bits >= 24 {
                return Err(DsError::InvalidConfig("weight_truncate_bits must be < 24"));
            }
            model.truncate_weights(cfg.weight_truncate_bits);
        }
        Ok(TrainedCompressor {
            prep,
            model: Some(model),
            report,
            cfg: cfg.clone(),
            nrows: total_rows,
        })
    }

    /// Materializes the archive for the table this compressor was trained
    /// on (must be byte-identical to the training table).
    pub fn materialize(&self, table: &Table) -> Result<DsArchive> {
        if table.nrows() != self.nrows {
            return Err(DsError::InvalidConfig(
                "materialize: table differs from training table",
            ));
        }
        let assignments = {
            let _sp = ds_obs::span("assign");
            match &self.model {
                Some(m) => m.assign_by_loss(&self.prep.x, &self.prep.cat_targets)?,
                None => vec![0; table.nrows()],
            }
        };
        self.materialize_with_assignments(table, &assignments)
    }

    /// Compresses a *new* table with the already-fitted plans and trained
    /// model — the streaming scenario of §3, where "the encoder half of
    /// the model can even be pushed to the clients". Cells the fitted
    /// plans cannot represent (unseen categorical values, numerics outside
    /// the fitted error envelope) are stored verbatim as patches, so every
    /// reconstruction guarantee still holds. Retrain periodically if the
    /// patch fraction grows.
    pub fn compress_batch(&self, table: &Table) -> Result<DsArchive> {
        self.compress_batch_opts(table, false)
    }

    /// [`compress_batch`](Self::compress_batch) with the decoder blob
    /// optionally omitted — shard blobs in a v2 container share one
    /// decoder via the container manifest instead of repeating it.
    pub(crate) fn compress_batch_opts(
        &self,
        table: &Table,
        omit_decoder: bool,
    ) -> Result<DsArchive> {
        let (prep, patches) = {
            let _sp = ds_obs::span("apply_plans");
            crate::preprocess::apply_plans(table, &self.prep.plans)?
        };
        let assignments = {
            let _sp = ds_obs::span("assign");
            match &self.model {
                Some(m) => m.assign_by_loss(&prep.x, &prep.cat_targets)?,
                None => vec![0; table.nrows()],
            }
        };
        let opts = MaterializeOptions {
            code_bits_candidates: self.cfg.code_bits_candidates.clone(),
            // Streaming batches always preserve row order: patches address
            // cells by original row index, which order-free storage would
            // scramble.
            order_free: false,
            omit_decoder,
            numeric_probe: self.cfg.numeric_probe,
        };
        let _sp = ds_obs::span("materialize");
        crate::materialize::materialize_with_patches(
            table,
            &prep,
            self.model.as_ref(),
            &assignments,
            &patches,
            &opts,
        )
    }

    /// Materializes with externally supplied expert assignments (used by
    /// the k-means comparator, §7.4.2).
    pub fn materialize_with_assignments(
        &self,
        table: &Table,
        assignments: &[usize],
    ) -> Result<DsArchive> {
        let opts = MaterializeOptions {
            code_bits_candidates: self.cfg.code_bits_candidates.clone(),
            order_free: self.cfg.order_free,
            omit_decoder: false,
            numeric_probe: self.cfg.numeric_probe,
        };
        let _sp = ds_obs::span("materialize");
        materialize(table, &self.prep, self.model.as_ref(), assignments, &opts)
    }

    /// The configuration this compressor was trained under.
    pub(crate) fn cfg(&self) -> &DsConfig {
        &self.cfg
    }

    /// The gzlike-compressed decoder weights (empty when no model) — the
    /// blob the sharded container stores once in its manifest.
    pub(crate) fn decoder_blob(&self) -> Vec<u8> {
        match &self.model {
            Some(m) => gzlike::compress(&serialize::export_decoders(m)),
            None => Vec::new(),
        }
    }
}

/// Compresses a table end-to-end: preprocess → train → materialize.
///
/// With `cfg.shard_rows > 0` the output is a v2 sharded container (one
/// model trained on the whole table, row groups compressed independently
/// and streamed out in order); otherwise the legacy single-blob archive.
pub fn compress(table: &Table, cfg: &DsConfig) -> Result<DsArchive> {
    if cfg.shard_rows > 0 {
        let out = compress_sharded_to(table, cfg, Vec::new())?;
        return Ok(DsArchive {
            bytes: out.sink,
            breakdown: out.breakdown,
            failure_stats: Vec::new(),
            column_chains: Vec::new(),
        });
    }
    let _root = ds_obs::span("compress");
    TrainedCompressor::train(table, cfg)?.materialize(table)
}

/// Result of a sharded compression into a caller-supplied sink.
pub struct ShardedCompression<W> {
    /// The sink, returned after the footer was flushed.
    pub sink: W,
    /// Total container size in bytes.
    pub total_bytes: u64,
    /// Number of row-group shards written.
    pub n_shards: usize,
    /// Aggregated component sizes: `decoder` is the shared blob stored
    /// once in the manifest; `codes`/`failures` are summed across shards;
    /// `metadata` absorbs per-shard envelopes and the container framing.
    pub breakdown: SizeBreakdown,
}

/// Compresses an in-memory table into a v2 sharded container: one model
/// trained on the whole table, row groups of `cfg.shard_rows` rows
/// compressed independently on the pool and streamed into `sink` in index
/// order. The produced bytes are identical for any `DS_THREADS`.
///
/// This is a thin adapter: the table is wrapped in a
/// [`ds_table::stream::TableSource`] and run through the exact same staged
/// pipeline as true streaming input ([`crate::stream::compress_stream_to`]),
/// so the in-memory and streaming paths cannot drift apart.
///
/// The decoder weights are stored once in the container manifest (shards
/// carry empty decoder blobs), so sharding does not multiply the §6.1
/// decoder cost.
pub fn compress_sharded_to<W: std::io::Write>(
    table: &Table,
    cfg: &DsConfig,
    sink: W,
) -> Result<ShardedCompression<W>> {
    let source = ds_table::stream::TableSource::new(table, cfg.shard_rows.max(1));
    crate::stream::compress_stream_to(&source, cfg, sink)
}

/// Decompresses an archive back into a table.
///
/// Categorical columns reconstruct exactly; numeric columns are within the
/// compression-time error thresholds (bucket midpoints). With an
/// order-free archive (§6.4) rows come back grouped by expert rather than
/// in original order.
///
/// Both container formats are handled: the legacy single-blob v1 archive,
/// and the v2 sharded container (detected by its trailing `DSRG` footer),
/// whose row groups are CRC-validated and decoded in parallel.
pub fn decompress(archive: &DsArchive) -> Result<Table> {
    let root = ds_obs::span("decompress");
    let root_id = root.id();
    if ds_shard::is_sharded(&archive.bytes) {
        let reader = ds_shard::ShardReader::open(&archive.bytes)?;
        let decoder = ShardDecoder::from_shared_blob(reader.shared())?;
        let parts = reader
            .read_all(|i, blob| {
                let _sp = ds_obs::span_under(root_id, "decode_shard", i as u64);
                decoder.decode_shard(blob)
            })
            .map_err(flatten_op)?;
        let table = Table::concat(&parts)?;
        ds_obs::counter("decompress.rows", table.nrows() as u64);
        return Ok(table);
    }
    let table = decompress_bytes(&archive.bytes, None)?;
    ds_obs::counter("decompress.rows", table.nrows() as u64);
    Ok(table)
}

/// Statistics from a partial decode ([`decompress_rows_with_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedDecodeStats {
    /// Shards in the container (1 for a monolithic v1 archive).
    pub shards_total: usize,
    /// Shards decoded to cover the requested row range. (A schema probe
    /// for an empty result range is not counted.)
    pub shards_decoded: usize,
}

/// Decompresses only the rows in `rows` (clamped to the table).
///
/// On a sharded archive, only the row groups intersecting the range are
/// CRC-validated and decoded — in parallel; on a monolithic archive the
/// whole table is decoded and sliced.
pub fn decompress_rows(archive: &DsArchive, rows: std::ops::Range<usize>) -> Result<Table> {
    Ok(decompress_rows_with_stats(archive, rows)?.0)
}

/// [`decompress_rows`] plus shard-decode statistics, so callers (and the
/// partial-read tests) can verify how much work the range actually cost.
pub fn decompress_rows_with_stats(
    archive: &DsArchive,
    rows: std::ops::Range<usize>,
) -> Result<(Table, ShardedDecodeStats)> {
    if !ds_shard::is_sharded(&archive.bytes) {
        let full = decompress_bytes(&archive.bytes, None)?;
        let stats = ShardedDecodeStats {
            shards_total: 1,
            shards_decoded: 1,
        };
        return Ok((full.slice_rows(rows), stats));
    }
    let root = ds_obs::span("decompress_rows");
    let root_id = root.id();
    let reader = ds_shard::ShardReader::open(&archive.bytes)?;
    let decoder = ShardDecoder::from_shared_blob(reader.shared())?;
    let got = reader
        .read_rows(rows, |i, blob| {
            let _sp = ds_obs::span_under(root_id, "decode_shard", i as u64);
            decoder.decode_shard(blob)
        })
        .map_err(flatten_op)?;
    let stats = ShardedDecodeStats {
        shards_total: reader.n_shards(),
        shards_decoded: got.shards_decoded,
    };
    if got.parts.is_empty() {
        // Nothing intersects: decode one shard only to recover the schema
        // and return its empty slice.
        let blob = reader.shard_bytes(0)?;
        let probe = decoder.decode_shard(blob)?;
        return Ok((probe.slice_rows(0..0), stats));
    }
    let table = Table::concat(&got.parts)?;
    Ok((table.slice_rows(got.skip..got.skip + got.take), stats))
}

/// The shared decoder of a v2 sharded container, parsed **once** and
/// reused across every shard decode. Before this type existed each shard
/// re-ran `gzlike::decompress` + weight deserialization on the same
/// manifest blob — pure per-shard overhead that also made a long-lived
/// archive server impossible. `ds-serve`'s `Archive` handle keeps one of
/// these alive for its whole lifetime; [`decompress`] and
/// [`decompress_rows`] build one per call.
pub struct ShardDecoder {
    model: Option<MoeAutoencoder>,
}

impl ShardDecoder {
    /// Parses the container's shared decoder blob (gzlike-compressed
    /// weights; an empty blob means the container has no shared decoder).
    pub fn from_shared_blob(shared: &[u8]) -> Result<ShardDecoder> {
        if shared.is_empty() {
            return Ok(ShardDecoder { model: None });
        }
        let weights = gzlike::decompress(shared)?;
        Ok(ShardDecoder {
            model: Some(serialize::import_decoders(&weights)?),
        })
    }

    /// Whether a shared decoder model is present.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Decodes one self-contained shard blob (a v1 archive). A blob with
    /// an empty decoder section borrows this shared model; a blob
    /// carrying its own decoder still decodes independently.
    pub fn decode_shard(&self, bytes: &[u8]) -> Result<Table> {
        decompress_bytes(bytes, self.model.as_ref())
    }
}

/// Collapses a per-shard operation error into the pipeline error type.
fn flatten_op(e: ds_shard::OpError<DsError>) -> DsError {
    match e {
        ds_shard::OpError::Container(c) => c.into(),
        ds_shard::OpError::Shard { error, .. } => error,
    }
}

/// Decodes one self-contained v1 archive blob. `shared_model` supplies
/// the already-parsed decoder for shard blobs that carry an empty decoder
/// section (the sharded container stores the decoder once in its
/// manifest; [`ShardDecoder`] parses it once per archive, not per shard).
fn decompress_bytes(bytes: &[u8], shared_model: Option<&MoeAutoencoder>) -> Result<Table> {
    let mut r = ByteReader::new(bytes);
    if r.read_bytes(4)? != MAGIC {
        return Err(DsError::Corrupt("bad magic"));
    }
    if r.read_u8()? != VERSION {
        return Err(DsError::Corrupt("unsupported version"));
    }
    let n = r.read_varint()? as usize;
    if n > ds_codec::MAX_DECODE_ELEMS {
        // Row counts size downstream allocations; beyond the decode limit
        // the claim is corruption, not a huge table.
        return Err(DsError::Corrupt("implausible row count"));
    }
    let ncols = r.read_varint()? as usize;
    if ncols > 1 << 20 {
        return Err(DsError::Corrupt("implausible column count"));
    }

    let mut names = Vec::with_capacity(ncols);
    let mut plans = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = std::str::from_utf8(r.read_len_prefixed()?)
            .map_err(|_| DsError::Corrupt("column name not utf-8"))?
            .to_owned();
        names.push(name);
        plans.push(ColPlan::read_from(&mut r)?);
    }

    let has_model = match r.read_u8()? {
        0 => false,
        1 => true,
        _ => return Err(DsError::Corrupt("bad model flag")),
    };

    // A shard blob with an empty decoder section borrows the caller's
    // already-parsed shared model; a self-contained blob parses (and
    // owns) its own.
    let owned_model: Option<MoeAutoencoder>;
    let mut model: Option<&MoeAutoencoder> = None;
    let mut code_k = 0usize;
    let mut code_bits = 8u8;
    let mut n_experts = 1usize;
    let mut ranges: Vec<Vec<(f32, f32)>> = Vec::new();
    if has_model {
        let decoder_blob = r.read_len_prefixed()?;
        model = if decoder_blob.is_empty() {
            Some(shared_model.ok_or(DsError::Corrupt("archive requires a shared decoder"))?)
        } else {
            let weights = gzlike::decompress(decoder_blob)?;
            owned_model = Some(serialize::import_decoders(&weights)?);
            owned_model.as_ref()
        };
        code_k = r.read_varint()? as usize;
        code_bits = r.read_u8()?;
        if !(1..=32).contains(&code_bits) || code_k > 1 << 16 {
            return Err(DsError::Corrupt("bad code layout"));
        }
        n_experts = r.read_varint()? as usize;
        if n_experts == 0 || n_experts > 4096 {
            return Err(DsError::Corrupt("implausible expert count"));
        }
        if model.map(MoeAutoencoder::n_experts) != Some(n_experts) {
            return Err(DsError::Corrupt("expert count mismatch"));
        }
        for _ in 0..n_experts {
            let mut dims = Vec::with_capacity(code_k);
            for _ in 0..code_k {
                let lo = r.read_f32()?;
                let span = r.read_f32()?;
                dims.push((lo, span));
            }
            ranges.push(dims);
        }
    }

    // ---- expert mapping ----------------------------------------------------
    let strategy = match r.read_u8()? {
        0 => MappingStrategy::GroupedIndexes,
        1 => MappingStrategy::Labels,
        2 => MappingStrategy::GroupedOrderFree,
        3 => MappingStrategy::ArithLabels,
        _ => return Err(DsError::Corrupt("bad mapping strategy")),
    };
    let payload = r.read_len_prefixed()?;
    let (storage_to_original, expert_of_storage) = match strategy {
        MappingStrategy::GroupedIndexes => {
            let mut pr = ByteReader::new(payload);
            let mut s2o = Vec::with_capacity(n);
            let mut expert = Vec::with_capacity(n);
            for e in 0..n_experts {
                let group = delta::decode_u32(pr.read_len_prefixed()?)?;
                for idx in group {
                    s2o.push(idx as usize);
                    expert.push(e);
                }
            }
            if s2o.len() != n {
                return Err(DsError::Corrupt("mapping row count mismatch"));
            }
            (s2o, expert)
        }
        MappingStrategy::Labels => {
            let labels = rle::decode(payload)?;
            if labels.len() != n {
                return Err(DsError::Corrupt("label count mismatch"));
            }
            let expert: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
            if expert.iter().any(|&e| e >= n_experts) {
                return Err(DsError::Corrupt("label out of range"));
            }
            ((0..n).collect(), expert)
        }
        MappingStrategy::GroupedOrderFree => {
            let mut pr = ByteReader::new(payload);
            let mut expert = Vec::with_capacity(n);
            for e in 0..n_experts {
                let count = pr.read_varint()? as usize;
                expert.extend(std::iter::repeat_n(e, count));
            }
            if expert.len() != n {
                return Err(DsError::Corrupt("group sizes mismatch"));
            }
            ((0..n).collect(), expert)
        }
        MappingStrategy::ArithLabels => {
            let expert = crate::materialize::decode_labels_arith(payload, n_experts)?;
            if expert.len() != n {
                return Err(DsError::Corrupt("label count mismatch"));
            }
            if expert.iter().any(|&e| e >= n_experts) {
                return Err(DsError::Corrupt("label out of range"));
            }
            ((0..n).collect(), expert)
        }
    };

    // ---- codes ---------------------------------------------------------------
    let mut code_cols: Vec<Vec<u32>> = Vec::new();
    if has_model {
        let codes_blob = r.read_len_prefixed()?;
        if !codes_blob.is_empty() {
            let cols = parq::read_table(codes_blob)?;
            if cols.len() != code_k {
                return Err(DsError::Corrupt("code column count mismatch"));
            }
            for (_, col) in cols {
                match col {
                    parq::ParqColumn::U32(v) if v.len() == n => code_cols.push(v),
                    _ => return Err(DsError::Corrupt("code column malformed")),
                }
            }
        } else if code_k != 0 && n > 0 {
            return Err(DsError::Corrupt("missing codes"));
        }
    }

    // ---- failures --------------------------------------------------------------
    let failures_blob = r.read_len_prefixed()?;
    let failure_cols = parq::read_table(failures_blob)?;
    if failure_cols.len() != ncols {
        return Err(DsError::Corrupt("failure column count mismatch"));
    }

    let n_rare = r.read_varint()? as usize;
    let mut rare: std::collections::HashMap<usize, std::collections::VecDeque<u32>> =
        Default::default();
    for _ in 0..n_rare {
        let col = r.read_varint()? as usize;
        let blob = r.read_len_prefixed()?;
        let t = parq::read_table(blob)?;
        let values = match t.into_iter().next() {
            Some((_, parq::ParqColumn::U32(v))) => v,
            _ => return Err(DsError::Corrupt("rare stream malformed")),
        };
        rare.insert(col, values.into());
    }

    // ---- per-expert storage rows -------------------------------------------
    let mut expert_rows: Vec<Vec<usize>> = vec![Vec::new(); n_experts];
    for (pos, &e) in expert_of_storage.iter().enumerate() {
        expert_rows[e].push(pos);
    }

    // ---- decode predictions and rebuild columns (storage order) -------------
    // Output cells per column, in storage order.
    let mut out_cols: Vec<OutCol> = plans
        .iter()
        .map(|p| match p {
            ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. } => OutCol::Num(vec![0.0; n]),
            _ => OutCol::Str(vec![String::new(); n]),
        })
        .collect();

    // Head slot bookkeeping identical to materialization.
    let mut simple_slot_of = vec![usize::MAX; ncols];
    let mut cat_slot_of = vec![usize::MAX; ncols];
    let mut s = 0usize;
    let mut c = 0usize;
    for (i, plan) in plans.iter().enumerate() {
        match plan {
            ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. } | ColPlan::Binary { .. } => {
                simple_slot_of[i] = s;
                s += 1;
            }
            ColPlan::Cat { .. } => {
                cat_slot_of[i] = c;
                c += 1;
            }
            ColPlan::Fallback => {}
        }
    }

    for (e, rows) in expert_rows.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let decoded = if has_model {
            let qcols: Vec<Vec<u32>> = code_cols
                .iter()
                .map(|col| rows.iter().map(|&pos| col[pos]).collect())
                .collect();
            let dq = dequantize_codes(&qcols, &ranges[e], code_bits);
            Some(
                model
                    .expect("has_model")
                    .decode(e, &dq)
                    .map_err(DsError::from)?,
            )
        } else {
            None
        };

        // One pool task per column: each task owns its output buffer
        // exclusively and records its own error; errors surface in column
        // order so failures are thread-count independent too.
        let mut slots: Vec<(&mut OutCol, Result<()>)> =
            out_cols.iter_mut().map(|c| (c, Ok(()))).collect();
        ds_exec::parallel_chunks_mut(&mut slots, 1, |i, _, t| {
            let (out, res) = &mut t[0];
            *res = fill_decode_column(
                &plans[i],
                out,
                &failure_cols[i].1,
                decoded.as_ref(),
                rows,
                simple_slot_of[i],
                cat_slot_of[i],
            );
        });
        for (_, res) in slots {
            res?;
        }
    }

    // Fallback columns with no model at all (entire-table fallback).
    if !has_model {
        for (i, plan) in plans.iter().enumerate() {
            if let ColPlan::Fallback = plan {
                let values = match &failure_cols[i].1 {
                    parq::ParqColumn::Str(v) => v,
                    _ => return Err(DsError::Corrupt("fallback column malformed")),
                };
                if let OutCol::Str(buf) = &mut out_cols[i] {
                    buf.clone_from_slice(values);
                }
            }
        }
    }

    // ---- rare (OTHER) second pass, in storage order per column --------------
    for (i, plan) in plans.iter().enumerate() {
        if let ColPlan::Cat { dict, .. } = plan {
            if let OutCol::Str(buf) = &mut out_cols[i] {
                if buf.iter().any(|v| v == RARE_SENTINEL) {
                    let stream = rare
                        .get_mut(&i)
                        .ok_or(DsError::Corrupt("missing rare stream"))?;
                    for cell in buf.iter_mut() {
                        if cell == RARE_SENTINEL {
                            let code = stream
                                .pop_front()
                                .ok_or(DsError::Corrupt("rare stream exhausted"))?;
                            *cell = dict
                                .value_of(code)
                                .ok_or(DsError::Corrupt("rare code outside dictionary"))?
                                .to_owned();
                        }
                    }
                }
            }
        }
    }

    // ---- patches: verbatim out-of-plan cells (streaming batches) -------------
    let patch_blob = gzlike::decompress(r.read_len_prefixed()?)?;
    let mut pr = ByteReader::new(&patch_blob);
    let n_patches = pr.read_varint()? as usize;
    let mut patches = Vec::with_capacity(n_patches.min(1 << 20));
    for _ in 0..n_patches {
        let col = pr.read_varint()? as usize;
        let row = pr.read_varint()? as usize;
        if col >= ncols || row >= n {
            return Err(DsError::Corrupt("patch out of range"));
        }
        let value = match pr.read_u8()? {
            0 => crate::preprocess::PatchValue::Num(pr.read_f64()?),
            1 => crate::preprocess::PatchValue::Str(
                std::str::from_utf8(pr.read_len_prefixed()?)
                    .map_err(|_| DsError::Corrupt("patch not utf-8"))?
                    .to_owned(),
            ),
            _ => return Err(DsError::Corrupt("bad patch tag")),
        };
        patches.push(crate::preprocess::Patch { col, row, value });
    }

    // ---- scatter back to original order and build the table -----------------
    let mut named = Vec::with_capacity(ncols);
    for ((name, plan), out) in names.into_iter().zip(&plans).zip(out_cols) {
        let column = match (plan, out) {
            (ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. }, OutCol::Num(v)) => {
                let mut orig = vec![0.0f64; n];
                for (pos, &o) in storage_to_original.iter().enumerate() {
                    orig[o] = v[pos];
                }
                Column::Num(orig)
            }
            (_, OutCol::Str(v)) => {
                let mut orig = vec![String::new(); n];
                for (pos, &o) in storage_to_original.iter().enumerate() {
                    orig[o] = v[pos].clone();
                }
                Column::Cat(orig)
            }
            _ => return Err(DsError::Corrupt("column kind mismatch")),
        };
        debug_assert_eq!(
            column.ty(),
            match plan {
                ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. } => ColumnType::Numeric,
                _ => ColumnType::Categorical,
            }
        );
        named.push((name, column));
    }
    // Apply patches last (positions are original row indexes).
    for p in &patches {
        match (&mut named[p.col].1, &p.value) {
            (Column::Num(v), crate::preprocess::PatchValue::Num(x)) => v[p.row] = *x,
            (Column::Cat(v), crate::preprocess::PatchValue::Str(x)) => {
                v[p.row] = x.clone();
            }
            _ => return Err(DsError::Corrupt("patch type mismatch")),
        }
    }
    Ok(Table::from_columns(named)?)
}

/// A sentinel that can never collide with dictionary contents because the
/// rare pass replaces it before the table is built (dictionary values are
/// user data, so the sentinel is an internal `\u{0}`-prefixed marker and
/// any residue is an error surfaced by the rare-stream length check).
const RARE_SENTINEL: &str = "\u{0}__DS_RARE__";

enum OutCol {
    Num(Vec<f64>),
    Str(Vec<String>),
}

/// Rebuilds one column's cells for one expert's rows from the decoded
/// predictions and the column's failure stream. Runs as one pool task per
/// column during decompression.
fn fill_decode_column(
    plan: &ColPlan,
    out: &mut OutCol,
    failure: &parq::ParqColumn,
    decoded: Option<&DecodedBatch>,
    rows: &[usize],
    simple_slot: usize,
    cat_slot: usize,
) -> Result<()> {
    match plan {
        ColPlan::Numeric {
            quantizer,
            min,
            max,
        } => {
            let decoded = decoded.ok_or(DsError::Corrupt("missing model"))?;
            let deltas = match failure {
                parq::ParqColumn::I64(v) => v,
                _ => return Err(DsError::Corrupt("numeric failures malformed")),
            };
            let span = (max - min).max(f64::MIN_POSITIVE);
            let card = quantizer.cardinality() as i64;
            if let OutCol::Num(buf) = out {
                for (b, &pos) in rows.iter().enumerate() {
                    let p = f64::from(decoded.simple.get(b, simple_slot));
                    let pred_bucket = quantizer.index_of(min + p * span) as i64;
                    let bucket = (pred_bucket + deltas[pos]).clamp(0, card - 1);
                    buf[pos] = quantizer.value_of(bucket as u32);
                }
            }
        }
        ColPlan::NumericRaw { min, max, .. } => {
            let decoded = decoded.ok_or(DsError::Corrupt("missing model"))?;
            let deltas = match failure {
                parq::ParqColumn::F64(v) => v,
                _ => return Err(DsError::Corrupt("raw failures malformed")),
            };
            let span = (max - min).max(f64::MIN_POSITIVE);
            if let OutCol::Num(buf) = out {
                for (b, &pos) in rows.iter().enumerate() {
                    let p = f64::from(decoded.simple.get(b, simple_slot));
                    let pred = min + p * span;
                    buf[pos] = pred + deltas[pos];
                }
            }
        }
        ColPlan::Binary { dict } => {
            let decoded = decoded.ok_or(DsError::Corrupt("missing model"))?;
            let xors = match failure {
                parq::ParqColumn::U32(v) => v,
                _ => return Err(DsError::Corrupt("binary failures malformed")),
            };
            if let OutCol::Str(buf) = out {
                for (b, &pos) in rows.iter().enumerate() {
                    let bit = u32::from(decoded.simple.get(b, simple_slot) > 0.5) ^ xors[pos];
                    let value = dict
                        .value_of(bit)
                        .or_else(|| dict.value_of(0))
                        .ok_or(DsError::Corrupt("binary dictionary empty"))?;
                    buf[pos] = value.to_owned();
                }
            }
        }
        ColPlan::Cat {
            dict,
            model_card,
            class_to_code,
        } => {
            let decoded = decoded.ok_or(DsError::Corrupt("missing model"))?;
            let ranks = match failure {
                parq::ParqColumn::U32(v) => v,
                _ => return Err(DsError::Corrupt("categorical failures malformed")),
            };
            let probs = &decoded.cat_probs[cat_slot];
            let has_other = class_to_code.len() < *model_card;
            let other = *model_card - 1;
            if let OutCol::Str(buf) = out {
                for (b, &pos) in rows.iter().enumerate() {
                    let class = class_at_rank(probs.row(b), *model_card, ranks[pos])
                        .ok_or(DsError::Corrupt("rank out of range"))?;
                    let code = if has_other && class == other {
                        // OTHER: the exact code comes from the rare
                        // stream — but rare entries are ordered by
                        // storage position across experts, so they
                        // are resolved in a second pass below.
                        u32::MAX
                    } else {
                        class_to_code
                            .get(class)
                            .copied()
                            .ok_or(DsError::Corrupt("class map too short"))?
                    };
                    if code == u32::MAX {
                        buf[pos] = RARE_SENTINEL.to_owned();
                    } else {
                        let value = dict
                            .value_of(code)
                            .ok_or(DsError::Corrupt("code outside dictionary"))?;
                        buf[pos] = value.to_owned();
                    }
                }
            }
        }
        ColPlan::Fallback => {
            let values = match failure {
                parq::ParqColumn::Str(v) => v,
                _ => return Err(DsError::Corrupt("fallback column malformed")),
            };
            if let OutCol::Str(buf) = out {
                for &pos in rows {
                    buf[pos] = values[pos].clone();
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::gen;

    fn fast_cfg(error: f64) -> DsConfig {
        DsConfig {
            error_threshold: error,
            max_epochs: 8,
            code_size: 2,
            ..Default::default()
        }
    }

    fn assert_within_error(original: &Table, restored: &Table, error: f64) {
        assert_eq!(original.schema(), restored.schema());
        assert_eq!(original.nrows(), restored.nrows());
        for (a, b) in original.columns().iter().zip(restored.columns()) {
            match (a, b) {
                (Column::Cat(x), Column::Cat(y)) => assert_eq!(x, y),
                (Column::Num(x), Column::Num(y)) => {
                    let min = x.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let bound = error * (max - min) * (1.0 + 1e-7) + 1e-9;
                    for (u, v) in x.iter().zip(y) {
                        assert!(
                            (u - v).abs() <= bound,
                            "numeric error {} exceeds bound {bound}",
                            (u - v).abs()
                        );
                    }
                }
                _ => panic!("column type changed"),
            }
        }
    }

    #[test]
    fn roundtrip_numeric_dataset() {
        let t = gen::corel_like(300, 1);
        let archive = compress(&t, &fast_cfg(0.10)).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
        assert!(archive.size() < t.raw_size());
    }

    #[test]
    fn roundtrip_categorical_dataset_exact() {
        let t = gen::census_like(300, 2);
        let archive = compress(&t, &fast_cfg(0.0)).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(t, restored);
    }

    #[test]
    fn roundtrip_mixed_dataset_with_binary_columns() {
        let t = gen::forest_like(250, 3);
        let archive = compress(&t, &fast_cfg(0.05)).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.05);
    }

    #[test]
    fn roundtrip_with_high_cardinality_fallback_and_rare_streams() {
        let mut cfg = fast_cfg(0.10);
        cfg.max_train_card = 16; // force OTHER classes on criteo cats
        let t = gen::criteo_like(300, 4);
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
    }

    #[test]
    fn roundtrip_multiple_experts() {
        let mut cfg = fast_cfg(0.10);
        cfg.n_experts = 3;
        let t = gen::monitor_like(400, 5);
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
    }

    #[test]
    fn roundtrip_no_quantization_ablation() {
        let mut cfg = fast_cfg(0.10);
        cfg.quantize_numerics = false;
        let t = gen::monitor_like(250, 6);
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
    }

    #[test]
    fn roundtrip_linear_ablation() {
        let mut cfg = fast_cfg(0.10);
        cfg.linear_single_layer = true;
        let t = gen::corel_like(200, 7);
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
    }

    #[test]
    fn order_free_returns_grouped_rows() {
        let mut cfg = fast_cfg(0.10);
        cfg.order_free = true;
        cfg.n_experts = 2;
        let t = gen::monitor_like(200, 8);
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), t.nrows());
        assert_eq!(restored.schema(), t.schema());
        // Multisets of each column must match even though order may not.
        for (a, b) in t.columns().iter().zip(restored.columns()) {
            let (a, b) = (a.as_num().unwrap(), b.as_num().unwrap());
            let mut xs: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let mut ys: Vec<u64> = b.iter().map(|v| (v.round()).to_bits()).collect();
            xs.sort_unstable();
            ys.sort_unstable();
            // With a 10% threshold values are bucket midpoints, so exact
            // multiset equality does not hold; just sanity-check counts.
            assert_eq!(xs.len(), ys.len());
        }
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = gen::corel_like(0, 9);
        let archive = compress(&t, &fast_cfg(0.10)).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), 0);
        assert_eq!(restored.schema(), t.schema());
    }

    #[test]
    fn sample_training_still_covers_full_table() {
        let mut cfg = fast_cfg(0.10);
        cfg.sample_frac = 0.2;
        let t = gen::monitor_like(500, 10);
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
    }

    #[test]
    fn breakdown_components_sum_to_size() {
        let t = gen::monitor_like(300, 11);
        let archive = compress(&t, &fast_cfg(0.05)).unwrap();
        assert_eq!(archive.breakdown().total(), archive.size());
        assert!(archive.breakdown().decoder > 0);
        assert!(archive.breakdown().codes > 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = gen::corel_like(50, 12);
        let mut cfg = fast_cfg(0.1);
        cfg.sample_frac = 0.0;
        assert!(compress(&t, &cfg).is_err());
        let mut cfg = fast_cfg(0.1);
        cfg.per_column_errors = Some(vec![0.1; 2]);
        assert!(compress(&t, &cfg).is_err());
        let mut cfg = fast_cfg(0.1);
        cfg.code_bits_candidates = vec![40];
        assert!(compress(&t, &cfg).is_err());
    }

    #[test]
    fn corrupt_archives_error_not_panic() {
        let t = gen::monitor_like(120, 13);
        let archive = compress(&t, &fast_cfg(0.10)).unwrap();
        let bytes = archive.as_bytes().to_vec();
        assert!(decompress(&DsArchive::from_bytes(bytes[1..].to_vec())).is_err());
        for cut in [5, 30, bytes.len() / 2, bytes.len() - 2] {
            let _ = decompress(&DsArchive::from_bytes(bytes[..cut].to_vec()));
        }
        for i in (0..bytes.len()).step_by(131) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            let _ = decompress(&DsArchive::from_bytes(bad)); // no panic
        }
    }

    #[test]
    fn sharded_roundtrip_within_error() {
        let t = gen::monitor_like(300, 21);
        let mut cfg = fast_cfg(0.10);
        cfg.shard_rows = 64;
        let sharded = compress(&t, &cfg).unwrap();
        assert!(ds_shard::is_sharded(sharded.as_bytes()));
        let restored = decompress(&sharded).unwrap();
        assert_within_error(&t, &restored, 0.10);
        assert_eq!(sharded.breakdown().total(), sharded.size());
        assert!(sharded.breakdown().decoder > 0);
    }

    #[test]
    fn partial_read_decodes_only_intersecting_shards() {
        let t = gen::census_like(200, 22);
        let mut cfg = fast_cfg(0.0);
        cfg.shard_rows = 20; // 10 shards
        let archive = compress(&t, &cfg).unwrap();
        let full = decompress(&archive).unwrap();
        assert_eq!(full, t); // lossless at threshold 0
        let (part, stats) = decompress_rows_with_stats(&archive, 45..105).unwrap();
        assert_eq!(stats.shards_total, 10);
        assert_eq!(stats.shards_decoded, 4); // shards 2..6 cover rows 40..120
        assert_eq!(part, full.slice_rows(45..105));
        // Single-shard request touches exactly one shard.
        let (part, stats) = decompress_rows_with_stats(&archive, 60..80).unwrap();
        assert_eq!(stats.shards_decoded, 1);
        assert_eq!(part, full.slice_rows(60..80));
    }

    #[test]
    fn partial_read_works_on_monolithic_archives_too() {
        let t = gen::census_like(100, 25);
        let archive = compress(&t, &fast_cfg(0.0)).unwrap();
        let (part, stats) = decompress_rows_with_stats(&archive, 10..35).unwrap();
        assert_eq!(stats.shards_total, 1);
        assert_eq!(stats.shards_decoded, 1);
        assert_eq!(part, t.slice_rows(10..35));
    }

    #[test]
    fn sharded_bytes_thread_count_invariant() {
        let t = gen::monitor_like(150, 23);
        let mut cfg = fast_cfg(0.10);
        cfg.shard_rows = 32;
        let a = ds_exec::with_thread_limit(1, || compress(&t, &cfg)).unwrap();
        let b = ds_exec::with_thread_limit(8, || compress(&t, &cfg)).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
        let ta = ds_exec::with_thread_limit(1, || decompress(&a)).unwrap();
        let tb = ds_exec::with_thread_limit(8, || decompress(&b)).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn sharded_empty_table_roundtrip() {
        let t = gen::corel_like(0, 24);
        let mut cfg = fast_cfg(0.10);
        cfg.shard_rows = 16;
        let archive = compress(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), 0);
        assert_eq!(restored.schema(), t.schema());
        // An empty result range still recovers the schema.
        let (p, stats) = decompress_rows_with_stats(&archive, 0..10).unwrap();
        assert_eq!(p.schema(), t.schema());
        assert_eq!(p.nrows(), 0);
        assert_eq!(stats.shards_decoded, 0);
    }

    #[test]
    fn sharded_rejects_bad_configs() {
        let t = gen::corel_like(50, 26);
        let mut cfg = fast_cfg(0.1);
        cfg.order_free = true;
        cfg.shard_rows = 10;
        assert!(compress(&t, &cfg).is_err());
        let cfg2 = fast_cfg(0.1);
        assert!(compress_sharded_to(&t, &cfg2, Vec::new()).is_err()); // shard_rows == 0
    }

    #[test]
    fn deterministic_compression() {
        let t = gen::corel_like(150, 14);
        let a = compress(&t, &fast_cfg(0.10)).unwrap();
        let b = compress(&t, &fast_cfg(0.10)).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}
