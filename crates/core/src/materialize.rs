//! Materialization (§6): serializes everything decompression needs —
//! decoder weights, codes, failures, and the expert mapping — applying the
//! paper's columnar encodings to each component.
//!
//! * **Decoder** (§6.1): only the decoder half of each expert, with a
//!   final gzip-like pass over the exported weights.
//! * **Codes** (§6.2): each code dimension is quantized ("truncated") to
//!   `b` bits and stored as integers; `b` is chosen by actually measuring
//!   `codes + failures` for each candidate width and keeping the smallest
//!   total — truncation only pays if the extra failures don't eat the win.
//! * **Failures** (§6.3): rank-of-true-value for categorical columns
//!   (mostly zeros → RLE/Huffman-friendly), XOR bitmaps for binary
//!   columns, bucket-index deltas for quantized numerics — all through the
//!   [`ds_codec::parq`] columnar container.
//! * **Expert mapping** (§6.4): both strategies are built — grouped-by-
//!   expert with delta-coded original indexes, and in-order per-tuple
//!   labels run-length-coded — and the smaller one wins; an order-free
//!   variant drops the indexes entirely for relational tables.

use crate::archive::{DsArchive, SizeBreakdown, MAGIC, VERSION};
use crate::preprocess::{ColPlan, Patch, PatchValue, Preprocessed};
use crate::{DsError, Result};
use ds_codec::{delta, gzlike, parq, rle, ByteWriter};
use ds_nn::autoencoder::DecodedBatch;
use ds_nn::{serialize, Mat, MoeAutoencoder};
use ds_table::Table;

/// Materialization knobs.
#[derive(Debug, Clone)]
pub struct MaterializeOptions {
    /// Candidate code widths in bits (§6.2 truncation); the best total
    /// wins. Must be in 1..=32.
    pub code_bits_candidates: Vec<u8>,
    /// §6.4: drop original row order (legal for relational tables); rows
    /// come back grouped by expert.
    pub order_free: bool,
    /// Write an empty decoder blob even when a model is present. Used by
    /// the sharded container, which stores the (identical) decoder once in
    /// the container manifest instead of repeating it per row group;
    /// decompression then substitutes the shared blob.
    pub omit_decoder: bool,
    /// Let the per-chunk constant/FoR numeric model
    /// ([`ds_codec::registry::FOR_MODEL`]) compete for u32 streams. Off
    /// by default: any win changes the emitted bytes, so enabling it
    /// requires a reader that understands the recorded codec id.
    pub numeric_probe: bool,
}

impl Default for MaterializeOptions {
    fn default() -> Self {
        MaterializeOptions {
            code_bits_candidates: vec![4, 8, 16],
            order_free: false,
            omit_decoder: false,
            numeric_probe: false,
        }
    }
}

/// Expert-mapping strategies (§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingStrategy {
    /// Rows grouped by expert; original indexes delta-coded per group.
    GroupedIndexes = 0,
    /// Rows in original order; per-tuple expert labels RLE-coded.
    Labels = 1,
    /// Rows grouped by expert; only group sizes stored (order-free).
    GroupedOrderFree = 2,
    /// Rows in original order; labels entropy-coded with the adaptive
    /// range coder — near the mapping's actual entropy when assignments
    /// interleave (where RLE degenerates to a byte per run).
    ArithLabels = 3,
}

/// Internal: per-expert row groups plus the storage order they imply.
pub(crate) struct RowLayout {
    /// Chosen strategy.
    pub strategy: MappingStrategy,
    /// Serialized mapping payload.
    pub payload: Vec<u8>,
    /// storage position → original row index.
    pub storage_to_original: Vec<usize>,
    /// Per expert: storage positions of its rows (ascending).
    pub expert_rows: Vec<Vec<usize>>,
}

/// Builds the expert mapping, choosing the cheaper §6.4 strategy.
pub(crate) fn plan_rows(
    assignments: &[usize],
    n_experts: usize,
    order_free: bool,
) -> Result<RowLayout> {
    let n = assignments.len();
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n_experts];
    for (r, &e) in assignments.iter().enumerate() {
        let g = groups
            .get_mut(e)
            .ok_or(DsError::InvalidConfig("assignment out of range"))?;
        g.push(r as u32);
    }

    // Strategy A / order-free: storage order = groups concatenated.
    let grouped_storage: Vec<usize> = groups
        .iter()
        .flat_map(|g| g.iter().map(|&r| r as usize))
        .collect();

    let (strategy, payload, storage_to_original) = if order_free {
        let mut w = ByteWriter::new();
        for g in &groups {
            w.write_varint(g.len() as u64);
        }
        (
            MappingStrategy::GroupedOrderFree,
            w.into_vec(),
            grouped_storage.clone(),
        )
    } else {
        // Strategy A payload.
        let mut wa = ByteWriter::new();
        for g in &groups {
            wa.write_len_prefixed(&delta::encode_u32(g));
        }
        let a = wa.into_vec();
        // Strategy B payload.
        let labels: Vec<u32> = assignments.iter().map(|&e| e as u32).collect();
        let b = rle::encode(&labels);
        // Strategy C payload: adaptive arithmetic coding of the labels.
        let c = encode_labels_arith(assignments, n_experts)?;
        let (best_len, which) = [(a.len(), 0u8), (b.len(), 1), (c.len(), 3)]
            .into_iter()
            .min_by_key(|&(len, _)| len)
            .expect("three candidates");
        let _ = best_len;
        match which {
            0 => (MappingStrategy::GroupedIndexes, a, grouped_storage.clone()),
            1 => (MappingStrategy::Labels, b, (0..n).collect()),
            _ => (MappingStrategy::ArithLabels, c, (0..n).collect()),
        }
    };

    // Storage positions per expert.
    let mut expert_rows: Vec<Vec<usize>> = vec![Vec::new(); n_experts];
    for (pos, &orig) in storage_to_original.iter().enumerate() {
        expert_rows[assignments[orig]].push(pos);
    }

    Ok(RowLayout {
        strategy,
        payload,
        storage_to_original,
        expert_rows,
    })
}

/// Arithmetic-codes per-row expert labels with an adaptive model.
pub(crate) fn encode_labels_arith(assignments: &[usize], n_experts: usize) -> Result<Vec<u8>> {
    use ds_codec::rangecoder::{AdaptiveModel, RangeEncoder};
    let mut w = ByteWriter::new();
    w.write_varint(assignments.len() as u64);
    if assignments.is_empty() || n_experts < 2 {
        return Ok(w.into_vec());
    }
    let mut model = AdaptiveModel::new(n_experts)?;
    let mut enc = RangeEncoder::new();
    for &a in assignments {
        model.encode(&mut enc, a)?;
    }
    w.write_len_prefixed(&enc.finish());
    Ok(w.into_vec())
}

/// Inverse of [`encode_labels_arith`].
pub(crate) fn decode_labels_arith(payload: &[u8], n_experts: usize) -> Result<Vec<usize>> {
    use ds_codec::rangecoder::{AdaptiveModel, RangeDecoder};
    let mut r = ds_codec::ByteReader::new(payload);
    let n = r.read_varint()? as usize;
    if n > ds_codec::MAX_DECODE_ELEMS {
        return Err(DsError::Corrupt("label count exceeds decode limit"));
    }
    if n == 0 || n_experts < 2 {
        return Ok(vec![0; n]);
    }
    let stream = r.read_len_prefixed()?;
    let mut model = AdaptiveModel::new(n_experts)?;
    let mut dec = RangeDecoder::new(stream)?;
    let mut out = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        out.push(model.decode(&mut dec)?);
    }
    Ok(out)
}

/// Quantization layout of the materialized codes.
#[derive(Debug, Clone)]
pub(crate) struct CodeLayout {
    /// Code width in bits.
    pub bits: u8,
    /// Per expert, per code dimension: (min, span).
    pub ranges: Vec<Vec<(f32, f32)>>,
}

/// Quantizes per-expert codes to `bits`-wide integers (§6.2).
pub(crate) fn quantize_codes(
    per_expert_codes: &[Mat],
    bits: u8,
) -> (CodeLayout, Vec<Vec<Vec<u32>>>) {
    let levels = ((1u64 << bits) - 1) as f32;
    let mut ranges = Vec::with_capacity(per_expert_codes.len());
    let mut quantized = Vec::with_capacity(per_expert_codes.len());
    for codes in per_expert_codes {
        let k = codes.cols();
        let mut dim_ranges = Vec::with_capacity(k);
        let mut qcols: Vec<Vec<u32>> = vec![Vec::with_capacity(codes.rows()); k];
        for d in 0..k {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for r in 0..codes.rows() {
                lo = lo.min(codes.get(r, d));
                hi = hi.max(codes.get(r, d));
            }
            if codes.rows() == 0 {
                lo = 0.0;
                hi = 0.0;
            }
            let span = (hi - lo).max(0.0);
            dim_ranges.push((lo, span));
            for r in 0..codes.rows() {
                let t = if span > 0.0 {
                    ((codes.get(r, d) - lo) / span).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                qcols[d].push((t * levels).round() as u32);
            }
        }
        ranges.push(dim_ranges);
        quantized.push(qcols);
    }
    (CodeLayout { bits, ranges }, quantized)
}

/// Test/diagnostic re-export of [`quantize_codes`].
pub fn quantize_codes_for_test(
    per_expert_codes: &[ds_nn::Mat],
    bits: u8,
) -> (CodeLayoutPublic, Vec<Vec<Vec<u32>>>) {
    let (l, q) = quantize_codes(per_expert_codes, bits);
    (CodeLayoutPublic { ranges: l.ranges }, q)
}

/// Public mirror of the code layout for diagnostics.
pub struct CodeLayoutPublic {
    /// Per expert, per dimension (min, span).
    pub ranges: Vec<Vec<(f32, f32)>>,
}

/// Test/diagnostic re-export of [`dequantize_codes`].
pub fn dequantize_codes_for_test(
    qcols: &[Vec<u32>],
    ranges: &[(f32, f32)],
    bits: u8,
) -> ds_nn::Mat {
    dequantize_codes(qcols, ranges, bits)
}

/// Rebuilds the approximate (dequantized) code matrix for one expert.
pub(crate) fn dequantize_codes(qcols: &[Vec<u32>], ranges: &[(f32, f32)], bits: u8) -> Mat {
    let k = qcols.len();
    let rows = qcols.first().map(Vec::len).unwrap_or(0);
    let levels = ((1u64 << bits) - 1) as f32;
    let mut out = Mat::zeros(rows, k);
    for (d, col) in qcols.iter().enumerate() {
        let (lo, span) = ranges[d];
        for (r, &q) in col.iter().enumerate() {
            let v = if span > 0.0 {
                lo + (q as f32 / levels) * span
            } else {
                lo
            };
            out.set(r, d, v);
        }
    }
    out
}

/// Rank of `target` under a probability row: number of classes strictly
/// more probable, ties broken by class index (§6.3.1 — "sorted the
/// predictions by decreasing probability … store the index").
pub(crate) fn rank_of(probs: &[f32], card: usize, target: usize) -> u32 {
    let pt = probs[target];
    let mut rank = 0u32;
    for (c, &p) in probs[..card].iter().enumerate() {
        if p > pt || (p == pt && c < target) {
            rank += 1;
        }
    }
    rank
}

/// Inverse of [`rank_of`]: the class at `rank` under the same ordering.
pub(crate) fn class_at_rank(probs: &[f32], card: usize, rank: u32) -> Option<usize> {
    let mut order: Vec<usize> = (0..card).collect();
    order.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]).then(a.cmp(&b)));
    order.get(rank as usize).copied()
}

/// Per-column failure buffers, in storage order.
pub(crate) struct FailureBuffers {
    /// Aligned with the table's columns; variant depends on the plan.
    pub per_col: Vec<FailureCol>,
    /// Rare (OTHER-class) global codes: (column, storage position, code).
    pub rare: Vec<(usize, usize, u32)>,
}

/// One column's failure stream.
pub(crate) enum FailureCol {
    /// Quantized numeric: bucket-index deltas.
    NumDelta(Vec<i64>),
    /// Raw numeric: value deltas in original units (0.0 = within bound).
    RawDelta(Vec<f64>),
    /// Binary: XOR of predicted and true bits.
    Xor(Vec<u32>),
    /// Categorical: rank of the true class.
    Rank(Vec<u32>),
    /// Fallback: the raw strings themselves.
    Raw(Vec<String>),
}

/// Fills one column's failure buffer for one expert's rows. Infallible by
/// construction: every fallible lookup is resolved by the caller before
/// the parallel fan-out, so this can run as a pool task per column.
#[allow(clippy::too_many_arguments)]
fn fill_expert_column(
    plan: &ColPlan,
    fc: &mut FailureCol,
    decoded: &DecodedBatch,
    rows: &[usize],
    storage_to_original: &[usize],
    truth: Option<&[u32]>,
    raw_values: Option<&[f64]>,
    simple_slot: usize,
    cat_slot: usize,
) {
    match plan {
        ColPlan::Numeric {
            quantizer,
            min,
            max,
        } => {
            let truth = truth.expect("numeric has codes");
            let span = (max - min).max(f64::MIN_POSITIVE);
            if let FailureCol::NumDelta(buf) = fc {
                for (b, &pos) in rows.iter().enumerate() {
                    let orig = storage_to_original[pos];
                    let p = f64::from(decoded.simple.get(b, simple_slot));
                    let pred_bucket = quantizer.index_of(min + p * span);
                    buf[pos] = i64::from(truth[orig]) - i64::from(pred_bucket);
                }
            }
        }
        ColPlan::NumericRaw { min, max, error } => {
            let values = raw_values.expect("raw numeric values resolved by caller");
            let span = (max - min).max(f64::MIN_POSITIVE);
            let bound = error * (max - min);
            if let FailureCol::RawDelta(buf) = fc {
                for (b, &pos) in rows.iter().enumerate() {
                    let orig = storage_to_original[pos];
                    let p = f64::from(decoded.simple.get(b, simple_slot));
                    let pred = min + p * span;
                    let diff = values[orig] - pred;
                    buf[pos] = if diff.abs() <= bound { 0.0 } else { diff };
                }
            }
        }
        ColPlan::Binary { .. } => {
            let truth = truth.expect("binary has codes");
            if let FailureCol::Xor(buf) = fc {
                for (b, &pos) in rows.iter().enumerate() {
                    let orig = storage_to_original[pos];
                    let bit = u32::from(decoded.simple.get(b, simple_slot) > 0.5);
                    buf[pos] = bit ^ truth[orig];
                }
            }
        }
        ColPlan::Cat {
            model_card,
            class_to_code,
            ..
        } => {
            let truth = truth.expect("cat has codes");
            let probs = &decoded.cat_probs[cat_slot];
            if let FailureCol::Rank(buf) = fc {
                for (b, &pos) in rows.iter().enumerate() {
                    let orig = storage_to_original[pos];
                    let code = truth[orig];
                    let class = crate::preprocess::class_of_code(class_to_code, *model_card, code);
                    buf[pos] = rank_of(probs.row(b), *model_card, class as usize);
                }
            }
        }
        ColPlan::Fallback => {}
    }
}

/// Computes failures for every column given per-expert predictions.
///
/// `decode_expert(e)` must return predictions for expert `e`'s rows in the
/// order given by `layout.expert_rows[e]`. Per-column fills run on the
/// shared pool (each column's buffer is an independent task); rare-code
/// collection stays serial — it is cheap relative to rank computation and
/// keeps ordering trivially deterministic.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_failures(
    table: &Table,
    prep: &Preprocessed,
    layout: &RowLayout,
    mut decode_expert: impl FnMut(usize) -> Result<Option<DecodedBatch>>,
) -> Result<FailureBuffers> {
    let n = table.nrows();

    // Preallocate per-column buffers.
    let mut per_col: Vec<FailureCol> = prep
        .plans
        .iter()
        .map(|plan| match plan {
            ColPlan::Numeric { .. } => FailureCol::NumDelta(vec![0; n]),
            ColPlan::NumericRaw { .. } => FailureCol::RawDelta(vec![0.0; n]),
            ColPlan::Binary { .. } => FailureCol::Xor(vec![0; n]),
            ColPlan::Cat { .. } => FailureCol::Rank(vec![0; n]),
            ColPlan::Fallback => FailureCol::Raw(vec![String::new(); n]),
        })
        .collect();
    let mut rare: Vec<(usize, usize, u32)> = Vec::new();

    // Fallback columns: copy strings into storage order.
    for (i, plan) in prep.plans.iter().enumerate() {
        if matches!(plan, ColPlan::Fallback) {
            let values = table
                .column(i)
                .expect("plan index valid")
                .as_cat()
                .ok_or(DsError::Corrupt("fallback column must be categorical"))?;
            if let FailureCol::Raw(buf) = &mut per_col[i] {
                for (pos, &orig) in layout.storage_to_original.iter().enumerate() {
                    buf[pos] = values[orig].clone();
                }
            }
        }
    }

    // Model-visible columns, one expert at a time.
    // Slot bookkeeping: simple heads and categorical heads are interleaved
    // in model order; track each column's slot within its head family.
    let mut simple_slot_of = vec![usize::MAX; prep.plans.len()];
    let mut cat_slot_of = vec![usize::MAX; prep.plans.len()];
    let mut s = 0usize;
    let mut c = 0usize;
    for &i in &prep.model_cols {
        match prep.plans[i] {
            ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. } | ColPlan::Binary { .. } => {
                simple_slot_of[i] = s;
                s += 1;
            }
            ColPlan::Cat { .. } => {
                cat_slot_of[i] = c;
                c += 1;
            }
            ColPlan::Fallback => unreachable!("fallback is not model-visible"),
        }
    }

    // Resolve every fallible per-column lookup up front so the parallel
    // fill tasks are infallible.
    let raw_num: Vec<Option<&[f64]>> = prep
        .plans
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            if matches!(plan, ColPlan::NumericRaw { .. }) {
                table
                    .column(i)
                    .expect("plan index valid")
                    .as_num()
                    .ok_or(DsError::Corrupt("numeric plan on non-numeric column"))
                    .map(Some)
            } else {
                Ok(None)
            }
        })
        .collect::<Result<_>>()?;

    for (e, rows) in layout.expert_rows.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let decoded = match decode_expert(e)? {
            Some(d) => d,
            None => continue,
        };
        if decoded.simple.rows() != rows.len() {
            return Err(DsError::Corrupt("prediction batch size mismatch"));
        }

        // One pool task per column; each owns its buffer exclusively.
        ds_exec::parallel_chunks_mut(&mut per_col, 1, |i, _, cols| {
            fill_expert_column(
                &prep.plans[i],
                &mut cols[0],
                &decoded,
                rows,
                &layout.storage_to_original,
                prep.true_codes[i].as_deref(),
                raw_num[i],
                simple_slot_of[i],
                cat_slot_of[i],
            );
        });

        // Rare (OTHER-class) codes, in column order.
        for (i, plan) in prep.plans.iter().enumerate() {
            if let ColPlan::Cat {
                model_card,
                class_to_code,
                ..
            } = plan
            {
                if class_to_code.len() >= *model_card {
                    continue;
                }
                let truth = prep.true_codes[i].as_ref().expect("cat has codes");
                let other = (*model_card - 1) as u32;
                for &pos in rows {
                    let orig = layout.storage_to_original[pos];
                    let code = truth[orig];
                    let class = crate::preprocess::class_of_code(class_to_code, *model_card, code);
                    if class == other {
                        rare.push((i, pos, code));
                    }
                }
            }
        }
    }

    // Rare entries must pop in storage order at decompression.
    rare.sort_by_key(|&(col, pos, _)| (col, pos));
    Ok(FailureBuffers { per_col, rare })
}

/// Serializes failure buffers into the columnar failure blob. Returns the
/// blob, the rare-stream blob, per-column byte stats, and the per-column
/// registry codec chains the streams flowed through.
pub(crate) fn encode_failures(
    buffers: &FailureBuffers,
    numeric_probe: bool,
) -> Result<(Vec<u8>, Vec<u8>, Vec<(String, usize)>, Vec<Vec<u16>>)> {
    let mut cols: Vec<(String, parq::ParqColumn)> = Vec::new();
    for (i, fc) in buffers.per_col.iter().enumerate() {
        let name = format!("{i}");
        let col = match fc {
            FailureCol::NumDelta(v) => parq::ParqColumn::I64(v.clone()),
            FailureCol::RawDelta(v) => parq::ParqColumn::F64(v.clone()),
            FailureCol::Xor(v) => parq::ParqColumn::U32(v.clone()),
            FailureCol::Rank(v) => parq::ParqColumn::U32(v.clone()),
            FailureCol::Raw(v) => parq::ParqColumn::Str(v.clone()),
        };
        cols.push((name, col));
    }
    let (main, stats) = parq::write_table_opts(&cols, numeric_probe)?;
    let mut col_stats = Vec::with_capacity(stats.len());
    let mut col_chains = Vec::with_capacity(stats.len());
    for s in stats {
        col_stats.push((s.name, s.bytes));
        col_chains.push(s.chain);
    }

    // Rare streams, one per column, already in (col, pos) order.
    let mut w = ByteWriter::new();
    let mut by_col: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
    for &(col, _, code) in &buffers.rare {
        by_col.entry(col).or_default().push(code);
    }
    w.write_varint(by_col.len() as u64);
    for (col, codes) in by_col {
        w.write_varint(col as u64);
        let (blob, _) =
            parq::write_table_opts(&[("r".into(), parq::ParqColumn::U32(codes))], numeric_probe)?;
        w.write_len_prefixed(&blob);
    }
    Ok((main, w.into_vec(), col_stats, col_chains))
}

/// Runs the full materialization: mapping, codes (choosing the best width),
/// failures, decoder — and assembles the archive bytes.
pub fn materialize(
    table: &Table,
    prep: &Preprocessed,
    model: Option<&MoeAutoencoder>,
    assignments: &[usize],
    opts: &MaterializeOptions,
) -> Result<DsArchive> {
    materialize_with_patches(table, prep, model, assignments, &[], opts)
}

/// [`materialize`] plus verbatim patches for cells the plans cannot
/// represent (streaming batches, §3).
pub fn materialize_with_patches(
    table: &Table,
    prep: &Preprocessed,
    model: Option<&MoeAutoencoder>,
    assignments: &[usize],
    patches: &[Patch],
    opts: &MaterializeOptions,
) -> Result<DsArchive> {
    if assignments.len() != table.nrows() {
        return Err(DsError::InvalidConfig("one assignment per row required"));
    }
    if opts.code_bits_candidates.is_empty()
        || opts
            .code_bits_candidates
            .iter()
            .any(|&b| !(1..=32).contains(&b))
    {
        return Err(DsError::InvalidConfig("code bits must be in 1..=32"));
    }
    if opts.order_free && !patches.is_empty() {
        // Patches are addressed by original row index; order-free storage
        // discards that order, so the combination cannot reconstruct.
        return Err(DsError::InvalidConfig(
            "order-free storage is incompatible with patches",
        ));
    }
    let has_model = model.is_some() && !prep.model_cols.is_empty() && table.nrows() > 0;

    let n_experts = model.map(MoeAutoencoder::n_experts).unwrap_or(1);
    let layout = plan_rows(assignments, n_experts, opts.order_free)?;

    // ---- per-expert exact codes (f32) -------------------------------------
    let per_expert_codes: Vec<Mat> = if has_model {
        let model = model.expect("has_model");
        // One pool task per expert (gather + encode); results collected in
        // expert order so the archive is thread-count independent.
        ds_exec::parallel_map(n_experts, |e| -> Result<Mat> {
            let orig: Vec<usize> = layout.expert_rows[e]
                .iter()
                .map(|&pos| layout.storage_to_original[pos])
                .collect();
            let xb = prep.x.take_rows(&orig);
            Ok(model.encode(e, &xb)?)
        })
        .into_iter()
        .collect::<Result<_>>()?
    } else {
        Vec::new()
    };

    // ---- choose the code width by total (codes + failures) size -----------
    #[allow(clippy::type_complexity)]
    let mut best: Option<(
        usize,
        CodeLayout,
        Vec<u8>,
        Vec<u8>,
        Vec<u8>,
        Vec<(String, usize)>,
        Vec<Vec<u16>>,
    )> = None;
    let encode_span = ds_obs::span("encode");
    for &bits in &opts.code_bits_candidates {
        let (code_layout, quantized) = quantize_codes(&per_expert_codes, bits);
        // Codes blob: k columns in storage order.
        let codes_blob = encode_code_blob(&quantized, &layout, table.nrows(), opts.numeric_probe)?;

        let buffers = compute_failures(table, prep, &layout, |e| {
            if !has_model || layout.expert_rows[e].is_empty() {
                return Ok(None);
            }
            let dq = dequantize_codes(&quantized[e], &code_layout.ranges[e], bits);
            let model = model.expect("has_model");
            Ok(Some(model.decode(e, &dq)?))
        })?;
        let (failures_blob, rare_blob, col_stats, col_chains) =
            encode_failures(&buffers, opts.numeric_probe)?;

        let total = codes_blob.len() + failures_blob.len() + rare_blob.len();
        if best.as_ref().is_none_or(|(t, ..)| total < *t) {
            best = Some((
                total,
                code_layout,
                codes_blob,
                failures_blob,
                rare_blob,
                col_stats,
                col_chains,
            ));
        }
        if !has_model {
            break; // width is irrelevant without a model
        }
    }
    drop(encode_span);
    let (_, code_layout, codes_blob, failures_blob, rare_blob, col_stats, col_chains) =
        best.expect("at least one candidate evaluated");

    if ds_obs::enabled() {
        // Per-expert utilization: how many rows each expert owns.
        for (e, rows) in layout.expert_rows.iter().enumerate() {
            ds_obs::counter_at("pipeline.expert_rows", e as u64, rows.len() as u64);
        }
        // Codec byte flow for the winning candidate. Codes enter the parq
        // writer as k u32 columns of nrows values each.
        let k = code_layout.ranges.first().map(Vec::len).unwrap_or(0);
        ds_obs::counter("codec.parq.codes_in", (k * table.nrows() * 4) as u64);
        ds_obs::counter("codec.parq.codes_out", codes_blob.len() as u64);
        ds_obs::counter(
            "materialize.failures_bytes",
            (failures_blob.len() + rare_blob.len()) as u64,
        );
        ds_obs::counter("materialize.patches", patches.len() as u64);
        // Per-column failure-stream bytes, labelled with the real schema
        // column name (encode_failures names streams by column index).
        for (name, bytes) in &col_stats {
            let label = name
                .parse::<usize>()
                .ok()
                .and_then(|i| table.schema().field(i))
                .map(|f| f.name.as_str())
                .unwrap_or(name.as_str());
            ds_obs::counter_labeled("col.bytes", label, *bytes as u64);
        }
    }

    // ---- decoder blob -------------------------------------------------------
    let decoder_blob = if has_model && !opts.omit_decoder {
        let raw = serialize::export_decoders(model.expect("has_model"));
        let blob = gzlike::compress(&raw);
        ds_obs::counter("codec.gzlike.decoder_in", raw.len() as u64);
        ds_obs::counter("codec.gzlike.decoder_out", blob.len() as u64);
        blob
    } else {
        Vec::new()
    };

    // ---- assemble -----------------------------------------------------------
    let mut w = ByteWriter::new();
    w.write_bytes(MAGIC);
    w.write_u8(VERSION);
    w.write_varint(table.nrows() as u64);
    w.write_varint(table.ncols() as u64);
    for (i, plan) in prep.plans.iter().enumerate() {
        let name = &table.schema().field(i).expect("plan per column").name;
        w.write_len_prefixed(name.as_bytes());
        plan.write_to(&mut w);
    }
    w.write_u8(u8::from(has_model));
    let mut decoder_bytes = 0;
    let mut codes_bytes = 0;
    let mapping_bytes;
    if has_model {
        let before = w.len();
        w.write_len_prefixed(&decoder_blob);
        decoder_bytes = w.len() - before;

        // Code layout header (counted as metadata).
        let k = code_layout.ranges.first().map(Vec::len).unwrap_or(0);
        w.write_varint(k as u64);
        w.write_u8(code_layout.bits);
        w.write_varint(n_experts as u64);
        for dims in &code_layout.ranges {
            for &(lo, span) in dims {
                w.write_f32(lo);
                w.write_f32(span);
            }
        }

        let before = w.len();
        w.write_u8(layout.strategy as u8);
        w.write_len_prefixed(&layout.payload);
        mapping_bytes = w.len() - before;

        let before = w.len();
        w.write_len_prefixed(&codes_blob);
        codes_bytes = w.len() - before;
    } else {
        // Still record the mapping so decompression can restore row order
        // (a single implicit expert).
        let before = w.len();
        w.write_u8(layout.strategy as u8);
        w.write_len_prefixed(&layout.payload);
        mapping_bytes = w.len() - before;
    }

    let before = w.len();
    w.write_len_prefixed(&failures_blob);
    w.write_bytes(&rare_blob);
    // Patches: verbatim out-of-plan cells, gzlike-compressed.
    let mut pw = ByteWriter::new();
    pw.write_varint(patches.len() as u64);
    for p in patches {
        pw.write_varint(p.col as u64);
        pw.write_varint(p.row as u64);
        match &p.value {
            PatchValue::Num(v) => {
                pw.write_u8(0);
                pw.write_f64(*v);
            }
            PatchValue::Str(v) => {
                pw.write_u8(1);
                pw.write_len_prefixed(v.as_bytes());
            }
        }
    }
    w.write_len_prefixed(&gzlike::compress(pw.as_slice()));
    let failures_bytes = w.len() - before + mapping_bytes;

    let bytes = w.into_vec();
    let metadata = bytes.len() - decoder_bytes - codes_bytes - failures_bytes;
    Ok(DsArchive {
        breakdown: SizeBreakdown {
            decoder: decoder_bytes,
            codes: codes_bytes,
            failures: failures_bytes,
            metadata,
        },
        bytes,
        failure_stats: col_stats,
        column_chains: col_chains,
    })
}

/// Serializes quantized codes as a parq table of `k` u32 columns in
/// storage order.
fn encode_code_blob(
    quantized: &[Vec<Vec<u32>>],
    layout: &RowLayout,
    nrows: usize,
    numeric_probe: bool,
) -> Result<Vec<u8>> {
    let k = quantized
        .iter()
        .find(|q| !q.is_empty())
        .map(Vec::len)
        .unwrap_or(0);
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut cols: Vec<Vec<u32>> = vec![vec![0; nrows]; k];
    for (e, rows) in layout.expert_rows.iter().enumerate() {
        for (b, &pos) in rows.iter().enumerate() {
            for d in 0..k {
                cols[d][pos] = quantized[e][d][b];
            }
        }
    }
    let named: Vec<(String, parq::ParqColumn)> = cols
        .into_iter()
        .enumerate()
        .map(|(d, v)| (format!("code{d}"), parq::ParqColumn::U32(v)))
        .collect();
    let (blob, _) = parq::write_table_opts(&named, numeric_probe)?;
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip_with_ties() {
        let probs = vec![0.2f32, 0.5, 0.2, 0.1];
        for target in 0..4 {
            let r = rank_of(&probs, 4, target);
            assert_eq!(class_at_rank(&probs, 4, r), Some(target));
        }
        // The most probable class has rank 0.
        assert_eq!(rank_of(&probs, 4, 1), 0);
        // Tie between 0 and 2 breaks toward the lower index.
        assert_eq!(rank_of(&probs, 4, 0), 1);
        assert_eq!(rank_of(&probs, 4, 2), 2);
    }

    #[test]
    fn code_quantization_roundtrip_accuracy() {
        let mut codes = Mat::zeros(100, 3);
        for r in 0..100 {
            for d in 0..3 {
                codes.set(r, d, (r as f32 / 99.0) * (d as f32 + 0.5));
            }
        }
        for bits in [8u8, 16] {
            let (layout, q) = quantize_codes(std::slice::from_ref(&codes), bits);
            let dq = dequantize_codes(&q[0], &layout.ranges[0], bits);
            let tol = 1.5 / ((1u64 << bits) - 1) as f32 * 1.5; // span ≤ 1.5
            for r in 0..100 {
                for d in 0..3 {
                    assert!(
                        (dq.get(r, d) - codes.get(r, d)).abs() <= tol,
                        "bits {bits}: {} vs {}",
                        dq.get(r, d),
                        codes.get(r, d)
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_handles_empty_and_constant() {
        let empty = Mat::zeros(0, 2);
        let (layout, q) = quantize_codes(std::slice::from_ref(&empty), 8);
        assert_eq!(q[0].len(), 2);
        assert!(q[0][0].is_empty());
        let dq = dequantize_codes(&q[0], &layout.ranges[0], 8);
        assert_eq!(dq.rows(), 0);

        let mut constant = Mat::zeros(5, 1);
        for r in 0..5 {
            constant.set(r, 0, 0.7);
        }
        let (layout, q) = quantize_codes(std::slice::from_ref(&constant), 8);
        let dq = dequantize_codes(&q[0], &layout.ranges[0], 8);
        for r in 0..5 {
            assert!((dq.get(r, 0) - 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn row_layout_grouped_vs_labels() {
        // Alternating assignment: RLE labels are poor, grouped indexes are
        // poor too (stride-2 deltas are fine actually) — just verify both
        // reconstruct.
        let assignments: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let layout = plan_rows(&assignments, 2, false).unwrap();
        assert_eq!(layout.storage_to_original.len(), 100);
        // Every original row appears exactly once.
        let mut seen = [false; 100];
        for &o in &layout.storage_to_original {
            assert!(!seen[o]);
            seen[o] = true;
        }
        // expert_rows partitions storage positions consistently.
        let total: usize = layout.expert_rows.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for (e, rows) in layout.expert_rows.iter().enumerate() {
            for &pos in rows {
                assert_eq!(assignments[layout.storage_to_original[pos]], e);
            }
        }
    }

    #[test]
    fn order_free_drops_indexes() {
        let assignments: Vec<usize> = (0..1000).map(|i| i % 3).collect();
        let with_order = plan_rows(&assignments, 3, false).unwrap();
        let order_free = plan_rows(&assignments, 3, true).unwrap();
        assert_eq!(order_free.strategy, MappingStrategy::GroupedOrderFree);
        assert!(
            order_free.payload.len() < with_order.payload.len() / 10,
            "order-free mapping should be tiny: {} vs {}",
            order_free.payload.len(),
            with_order.payload.len()
        );
    }

    #[test]
    fn uniform_blocks_prefer_label_rle() {
        // Rows assigned in large blocks → labels RLE is a few bytes.
        let mut assignments = vec![0usize; 5000];
        assignments[2500..].iter_mut().for_each(|a| *a = 1);
        let layout = plan_rows(&assignments, 2, false).unwrap();
        assert_eq!(layout.strategy, MappingStrategy::Labels);
        assert!(layout.payload.len() < 32);
    }

    #[test]
    fn invalid_assignment_rejected() {
        assert!(plan_rows(&[0, 5], 2, false).is_err());
    }
}
