//! Hyperparameter tuning (§5.4, Fig. 5): Bayesian optimization over the
//! (code size × number of experts) grid with increasing sample sizes.
//!
//! The driver follows the paper's `tune()` pseudocode: for each candidate
//! sample size, run `minimize()` (expected-improvement GP search from
//! [`ds_bayesopt`]) with the *compression of the sample* as the expensive
//! objective; then compress an independent second sample with the chosen
//! hyperparameters and accept when the normalized size difference is
//! within `eps` — a proxy for "the model trained on the sample will
//! provide similar performance on the full dataset". If no sample size
//! converges, the configuration from the largest sample wins.

use crate::pipeline::{compress, DsConfig};
use crate::Result;
use ds_table::Table;

/// Tuning parameters mirroring the arguments of the paper's `tune()`.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Increasing candidate sample sizes (rows), e.g. `[1000, 5000, 20000]`.
    pub samples: Vec<usize>,
    /// Candidate code sizes.
    pub codes: Vec<usize>,
    /// Candidate expert counts.
    pub experts: Vec<usize>,
    /// Convergence threshold on `|size(y2) − size(y1)| / raw_size`.
    pub eps: f64,
    /// Objective-evaluation budget per sample size.
    pub budget: usize,
    /// Base configuration (error thresholds, epochs, seeds…); `code_size`
    /// and `n_experts` are overwritten by the search.
    pub base: DsConfig,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            samples: vec![1000, 4000, 16000],
            codes: vec![1, 2, 4],
            experts: vec![1, 2, 4],
            eps: 0.01,
            budget: 8,
            base: DsConfig::default(),
        }
    }
}

/// One hyperparameter trial, for convergence plots (Fig. 9).
#[derive(Debug, Clone)]
pub struct TuneTrial {
    /// Code size tried.
    pub code_size: usize,
    /// Expert count tried.
    pub n_experts: usize,
    /// Compression ratio achieved on the tuning sample (compressed/raw).
    pub ratio: f64,
}

/// Outcome of a [`tune`] run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Chosen configuration (base + best hyperparameters).
    pub config: DsConfig,
    /// All trials, in evaluation order (across all sample sizes).
    pub trials: Vec<TuneTrial>,
    /// Sample size at which the search accepted (rows); `None` when the
    /// largest sample was used without meeting `eps`.
    pub converged_at: Option<usize>,
}

/// Runs the Fig. 5 tuning procedure and returns the chosen configuration.
pub fn tune(table: &Table, cfg: &TuneConfig) -> Result<TuneOutcome> {
    let grid: Vec<Vec<f64>> = cfg
        .codes
        .iter()
        .flat_map(|&c| cfg.experts.iter().map(move |&e| vec![c as f64, e as f64]))
        .collect();
    if grid.is_empty() {
        return Err(crate::DsError::InvalidConfig("empty hyperparameter grid"));
    }
    let raw_size = table.raw_size().max(1) as f64;
    let mut trials: Vec<TuneTrial> = Vec::new();

    let mut best_from_largest: Option<(usize, usize)> = None;
    for (si, &s) in cfg.samples.iter().enumerate() {
        let full = s >= table.nrows();
        let x1 = if full {
            table.clone()
        } else {
            table.sample(s, cfg.base.seed.wrapping_add(1000 + si as u64))
        };
        let x1_raw = x1.raw_size().max(1) as f64;

        // minimize(train(x1, error), codes, experts)
        let mut local: Vec<TuneTrial> = Vec::new();
        let result = ds_bayesopt::minimize(
            &grid,
            |_, point| {
                let mut c = cfg.base.clone();
                c.code_size = point[0] as usize;
                c.n_experts = point[1] as usize;
                match compress(&x1, &c) {
                    Ok(archive) => {
                        let ratio = archive.size() as f64 / x1_raw;
                        local.push(TuneTrial {
                            code_size: c.code_size,
                            n_experts: c.n_experts,
                            ratio,
                        });
                        archive.size() as f64
                    }
                    // A failing configuration is simply a terrible one.
                    Err(_) => {
                        local.push(TuneTrial {
                            code_size: c.code_size,
                            n_experts: c.n_experts,
                            ratio: f64::INFINITY,
                        });
                        f64::INFINITY
                    }
                }
            },
            cfg.budget,
            cfg.base.seed.wrapping_add(77),
        )?;
        let y1_size = result.best_value;
        let best_point = &grid[result.best];
        let (code_size, n_experts) = (best_point[0] as usize, best_point[1] as usize);
        trials.extend(local);
        best_from_largest = Some((code_size, n_experts));

        // Model trained on the full data: return immediately (Fig. 5).
        if full {
            let mut config = cfg.base.clone();
            config.code_size = code_size;
            config.n_experts = n_experts;
            return Ok(TuneOutcome {
                config,
                trials,
                converged_at: Some(table.nrows()),
            });
        }

        // Cross-validate on an independent sample.
        let x2 = table.sample(s, cfg.base.seed.wrapping_add(2000 + si as u64));
        let mut c = cfg.base.clone();
        c.code_size = code_size;
        c.n_experts = n_experts;
        let y2_size = compress(&x2, &c)?.size() as f64;
        if (y2_size - y1_size).abs() / raw_size < cfg.eps {
            let mut config = cfg.base.clone();
            config.code_size = code_size;
            config.n_experts = n_experts;
            return Ok(TuneOutcome {
                config,
                trials,
                converged_at: Some(s),
            });
        }
    }

    // No sample size converged: keep the configuration from the largest.
    let (code_size, n_experts) =
        best_from_largest.ok_or(crate::DsError::InvalidConfig("no sample sizes"))?;
    let mut config = cfg.base.clone();
    config.code_size = code_size;
    config.n_experts = n_experts;
    Ok(TuneOutcome {
        config,
        trials,
        converged_at: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::gen;

    fn fast_base() -> DsConfig {
        DsConfig {
            error_threshold: 0.10,
            max_epochs: 4,
            ..Default::default()
        }
    }

    #[test]
    fn tune_returns_a_grid_member_and_trials() {
        let t = gen::corel_like(400, 1);
        let cfg = TuneConfig {
            samples: vec![150],
            codes: vec![1, 2],
            experts: vec![1, 2],
            eps: 1.0, // accept immediately after the first sample
            budget: 3,
            base: fast_base(),
        };
        let outcome = tune(&t, &cfg).unwrap();
        assert!(cfg.codes.contains(&outcome.config.code_size));
        assert!(cfg.experts.contains(&outcome.config.n_experts));
        assert_eq!(outcome.trials.len(), 3);
        assert_eq!(outcome.converged_at, Some(150));
        // Trials record finite ratios.
        assert!(outcome.trials.iter().all(|t| t.ratio.is_finite()));
    }

    #[test]
    fn oversized_sample_uses_full_data_path() {
        let t = gen::corel_like(120, 2);
        let cfg = TuneConfig {
            samples: vec![10_000], // > nrows → full-data branch
            codes: vec![1],
            experts: vec![1],
            eps: 0.001,
            budget: 1,
            base: fast_base(),
        };
        let outcome = tune(&t, &cfg).unwrap();
        assert_eq!(outcome.converged_at, Some(120));
    }

    #[test]
    fn unconverged_run_returns_largest_sample_choice() {
        let t = gen::monitor_like(600, 3);
        let cfg = TuneConfig {
            samples: vec![50, 100],
            codes: vec![1, 2],
            experts: vec![1],
            eps: 0.0, // impossible to satisfy
            budget: 2,
            base: fast_base(),
        };
        let outcome = tune(&t, &cfg).unwrap();
        assert_eq!(outcome.converged_at, None);
        assert!(cfg.codes.contains(&outcome.config.code_size));
    }

    #[test]
    fn empty_grid_rejected() {
        let t = gen::corel_like(50, 4);
        let cfg = TuneConfig {
            codes: vec![],
            ..TuneConfig::default()
        };
        assert!(tune(&t, &cfg).is_err());
    }

    #[test]
    fn trials_feed_convergence_curves() {
        // Best-so-far over trials must be non-increasing — the Fig. 9 series.
        let t = gen::corel_like(300, 5);
        let cfg = TuneConfig {
            samples: vec![120],
            codes: vec![1, 2, 4],
            experts: vec![1, 2],
            eps: 1.0,
            budget: 5,
            base: fast_base(),
        };
        let outcome = tune(&t, &cfg).unwrap();
        let mut best = f64::INFINITY;
        let series: Vec<f64> = outcome
            .trials
            .iter()
            .map(|t| {
                best = best.min(t.ratio);
                best
            })
            .collect();
        for w in series.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}
