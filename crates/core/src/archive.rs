//! The self-contained compressed archive container.
//!
//! Layout (little-endian, varint-framed):
//!
//! ```text
//! "DSQZ" | version u8
//! nrows varint | ncols varint
//! per column: name (len-prefixed) | ColPlan
//! has_model u8
//! if has_model:
//!   decoder blob (len-prefixed, gzlike-compressed DSNN weights)   §6.1
//!   code layout: k varint | bits u8 | per expert×dim: min f32, span f32
//!   n_experts varint
//!   expert mapping: strategy u8 | payload (len-prefixed)          §6.4
//!   codes blob (len-prefixed parq)                                 §6.2
//! failures blob (len-prefixed parq)                                §6.3
//! rare-streams: count varint | per stream: col varint | parq blob
//! patches: len-prefixed gzlike blob of verbatim out-of-plan cells
//! ```

/// Byte-size breakdown matching the stacked bars of Fig. 6 ("DS Failures",
/// "DS Codes", "DS Decoder") plus the envelope metadata (plans,
/// dictionaries, quantizers — counted with failures in the paper's bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeBreakdown {
    /// Compressed decoder weights.
    pub decoder: usize,
    /// Truncated, integerized codes.
    pub codes: usize,
    /// Materialized failures + expert mapping + fallback columns.
    pub failures: usize,
    /// Envelope: plans, dictionaries, quantizers, code-layout header.
    pub metadata: usize,
}

impl SizeBreakdown {
    /// Total of all components.
    pub fn total(&self) -> usize {
        self.decoder + self.codes + self.failures + self.metadata
    }
}

/// Magic bytes of the archive format.
pub const MAGIC: &[u8; 4] = b"DSQZ";
/// Current format version.
pub const VERSION: u8 = 2;

/// A compressed table, self-contained: everything decompression needs.
#[derive(Debug, Clone)]
pub struct DsArchive {
    pub(crate) bytes: Vec<u8>,
    pub(crate) breakdown: SizeBreakdown,
    /// Per-column failure-stream sizes (diagnostics; empty after
    /// [`DsArchive::from_bytes`]).
    pub(crate) failure_stats: Vec<(String, usize)>,
    /// Per-column registry codec-id chains the failure streams flowed
    /// through, aligned with `failure_stats` (compression-time metadata;
    /// empty after [`DsArchive::from_bytes`]).
    pub(crate) column_chains: Vec<Vec<u16>>,
}

impl DsArchive {
    /// Wraps raw bytes (breakdown is unavailable when loading from disk;
    /// sizes are re-derivable by decompressing).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        DsArchive {
            bytes,
            breakdown: SizeBreakdown::default(),
            failure_stats: Vec::new(),
            column_chains: Vec::new(),
        }
    }

    /// Total archive size in bytes — the numerator of the paper's
    /// compression ratio.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Raw bytes (write these to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Component sizes (zeroed for archives loaded via
    /// [`DsArchive::from_bytes`]).
    pub fn breakdown(&self) -> SizeBreakdown {
        self.breakdown
    }

    /// Per-column failure-stream sizes in bytes (compression-time
    /// diagnostics; empty for archives loaded from raw bytes).
    pub fn failure_stats(&self) -> &[(String, usize)] {
        &self.failure_stats
    }

    /// Per-column registry codec-id chains of the failure streams,
    /// aligned with [`failure_stats`](Self::failure_stats) (empty for
    /// archives loaded from raw bytes).
    pub fn column_chains(&self) -> &[Vec<u16>] {
        &self.column_chains
    }
}

/// Which container framing an archive uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerKind {
    /// Single-blob v1 archive (`DSQZ` header).
    Monolithic,
    /// Sharded row-group container v2 (`DSRG` footer).
    Sharded,
}

/// Detects the container framing. Detection is footer-based: a v2
/// container *starts* with its first shard blob, which is itself a v1
/// archive, so only the trailing magic distinguishes the formats.
pub fn container_kind(archive: &DsArchive) -> ContainerKind {
    if ds_shard::is_sharded(&archive.bytes) {
        ContainerKind::Sharded
    } else {
        ContainerKind::Monolithic
    }
}

/// Header-level description of an archive (no decompression needed).
#[derive(Debug, Clone)]
pub struct ArchiveInfo {
    /// Row count.
    pub nrows: usize,
    /// Per column: (name, plan kind description).
    pub columns: Vec<(String, &'static str)>,
    /// Whether a model is embedded.
    pub has_model: bool,
    /// Number of experts (1 when no model).
    pub n_experts: usize,
    /// Code dimensions (0 when no model).
    pub code_size: usize,
    /// Stored code width in bits (0 when no model).
    pub code_bits: u8,
    /// Row-group shards in the container (0 = monolithic v1 archive).
    pub shards: usize,
    /// Recorded per-column codec chains (from the first shard's manifest
    /// row); `None` for v1 archives and v2 containers written before
    /// chain recording — those decode via the implicit legacy chain.
    pub codec_chains: Option<Vec<Vec<u16>>>,
}

/// Parses just the archive envelope — cheap metadata access for tooling.
/// For a sharded container this reads the manifest plus the first shard's
/// envelope (which describes the schema shared by every shard).
pub fn inspect(archive: &DsArchive) -> crate::Result<ArchiveInfo> {
    if ds_shard::is_sharded(&archive.bytes) {
        let reader = ds_shard::ShardReader::open(&archive.bytes).map_err(crate::DsError::from)?;
        let first = reader
            .shard_bytes(0)
            .map_err(|_| crate::DsError::Corrupt("sharded container has no shards"))?;
        let mut info = inspect_bytes(first)?;
        info.nrows = reader.total_rows();
        info.shards = reader.n_shards();
        info.codec_chains = reader.chains().map(|chains| {
            (0..chains.n_cols())
                .map(|col| chains.chain(0, col).unwrap_or(&[]).to_vec())
                .collect()
        });
        return Ok(info);
    }
    inspect_bytes(&archive.bytes)
}

fn inspect_bytes(bytes: &[u8]) -> crate::Result<ArchiveInfo> {
    use crate::preprocess::ColPlan;
    use crate::DsError;
    use ds_codec::ByteReader;

    let mut r = ByteReader::new(bytes);
    if r.read_bytes(4)? != MAGIC {
        return Err(DsError::Corrupt("bad magic"));
    }
    if r.read_u8()? != VERSION {
        return Err(DsError::Corrupt("unsupported version"));
    }
    let nrows = r.read_varint_usize()?;
    let ncols = r.read_varint_usize()?;
    if ncols > 1 << 20 {
        return Err(DsError::Corrupt("implausible column count"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = std::str::from_utf8(r.read_len_prefixed()?)
            .map_err(|_| DsError::Corrupt("column name not utf-8"))?
            .to_owned();
        let kind = match ColPlan::read_from(&mut r)? {
            ColPlan::Numeric { .. } => "numeric (quantized)",
            ColPlan::NumericRaw { .. } => "numeric (raw)",
            ColPlan::Binary { .. } => "binary",
            ColPlan::Cat { .. } => "categorical",
            ColPlan::Fallback => "fallback (columnar)",
        };
        columns.push((name, kind));
    }
    let has_model = match r.read_u8()? {
        0 => false,
        1 => true,
        _ => return Err(DsError::Corrupt("bad model flag")),
    };
    let (mut n_experts, mut code_size, mut code_bits) = (1usize, 0usize, 0u8);
    if has_model {
        let _decoder = r.read_len_prefixed()?;
        code_size = r.read_varint_usize()?;
        code_bits = r.read_u8()?;
        n_experts = r.read_varint_usize()?;
    }
    Ok(ArchiveInfo {
        nrows,
        columns,
        has_model,
        n_experts,
        code_size,
        code_bits,
        shards: 0,
        codec_chains: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspect_reads_envelope() {
        use ds_table::gen;
        let t = gen::monitor_like(120, 3);
        let cfg = crate::DsConfig {
            error_threshold: 0.1,
            code_size: 3,
            n_experts: 2,
            max_epochs: 2,
            ..Default::default()
        };
        let archive = crate::compress(&t, &cfg).expect("compresses");
        let info = inspect(&archive).expect("inspects");
        assert_eq!(info.nrows, 120);
        assert_eq!(info.columns.len(), 17);
        assert!(info.has_model);
        assert_eq!(info.n_experts, 2);
        assert_eq!(info.code_size, 3);
        assert!(info.code_bits >= 4);
        assert!(info
            .columns
            .iter()
            .all(|(_, k)| *k == "numeric (quantized)"));
    }

    #[test]
    fn inspect_rejects_garbage() {
        assert!(inspect(&DsArchive::from_bytes(vec![1, 2, 3])).is_err());
    }

    #[test]
    fn inspect_reads_sharded_containers() {
        use ds_table::gen;
        let t = gen::monitor_like(100, 7);
        let cfg = crate::DsConfig {
            error_threshold: 0.1,
            max_epochs: 2,
            shard_rows: 25,
            ..Default::default()
        };
        let archive = crate::compress(&t, &cfg).expect("compresses");
        assert_eq!(container_kind(&archive), ContainerKind::Sharded);
        let info = inspect(&archive).expect("inspects");
        assert_eq!(info.nrows, 100);
        assert_eq!(info.shards, 4);
        assert!(info.has_model);
        assert_eq!(info.columns.len(), t.ncols());

        let mono = crate::compress(
            &t,
            &crate::DsConfig {
                shard_rows: 0,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(container_kind(&mono), ContainerKind::Monolithic);
        assert_eq!(inspect(&mono).unwrap().shards, 0);
    }

    #[test]
    fn breakdown_total() {
        let b = SizeBreakdown {
            decoder: 10,
            codes: 20,
            failures: 30,
            metadata: 5,
        };
        assert_eq!(b.total(), 65);
    }

    #[test]
    fn from_bytes_preserves_size() {
        let a = DsArchive::from_bytes(vec![0u8; 123]);
        assert_eq!(a.size(), 123);
        assert_eq!(a.breakdown(), SizeBreakdown::default());
    }
}
