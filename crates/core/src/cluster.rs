//! k-means partitioning — the comparator for the mixture of experts
//! (§5.2, §7.4.2 / Fig. 8).
//!
//! The paper's argument: a traditional distance-based clustering can
//! *increase* required model complexity (Fig. 4), whereas the gate learns
//! a partition aligned with what the experts can actually reconstruct.
//! This module implements the comparison honestly: Lloyd's k-means over
//! the preprocessed rows, one autoencoder trained per cluster, and the
//! same materialization path with cluster ids as expert assignments.

use crate::pipeline::{DsConfig, TrainedCompressor};
use crate::preprocess::preprocess;
use crate::{DsArchive, DsError, Result};
use ds_nn::moe::MoeConfig;
use ds_nn::{Mat, ModelSpec, MoeAutoencoder};
use ds_table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Lloyd's algorithm over the rows of `x`. Returns per-row cluster ids.
///
/// Initialization is k-means++-style (greedy farthest-point from a seeded
/// start); empty clusters are reseeded from the farthest point.
pub fn kmeans(x: &Mat, k: usize, max_iters: usize, seed: u64) -> Result<Vec<usize>> {
    if k == 0 {
        return Err(DsError::InvalidConfig("k must be >= 1"));
    }
    let n = x.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let d = x.cols();
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ init.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    let first = (0..n).collect::<Vec<_>>();
    let &start = first.choose(&mut rng).expect("n > 0");
    centroids.push(x.row(start).to_vec());
    let mut dist2 = vec![f32::INFINITY; n];
    while centroids.len() < k {
        let last = centroids.last().expect("nonempty");
        for r in 0..n {
            let dd = sq_dist(x.row(r), last);
            if dd < dist2[r] {
                dist2[r] = dd;
            }
        }
        let next = (0..n)
            .max_by(|&a, &b| dist2[a].total_cmp(&dist2[b]))
            .expect("n > 0");
        centroids.push(x.row(next).to_vec());
    }

    let mut assign = vec![0usize; n];
    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for r in 0..n {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, cen) in centroids.iter().enumerate() {
                let dd = sq_dist(x.row(r), cen);
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if assign[r] != best {
                assign[r] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for r in 0..n {
            counts[assign[r]] += 1;
            for (j, &v) in x.row(r).iter().enumerate() {
                sums[assign[r]][j] += f64::from(v);
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster from the point farthest from its
                // centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(x.row(a), &centroids[assign[a]])
                            .total_cmp(&sq_dist(x.row(b), &centroids[assign[b]]))
                    })
                    .expect("n > 0");
                centroids[c] = x.row(far).to_vec();
                continue;
            }
            for j in 0..d {
                centroids[c][j] = (sums[c][j] / counts[c] as f64) as f32;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(assign)
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Compresses using k-means partitions instead of the learned gate: one
/// autoencoder per cluster, cluster ids as the expert mapping. `cfg`'s
/// `n_experts` is the number of clusters.
pub fn compress_kmeans(table: &Table, cfg: &DsConfig) -> Result<DsArchive> {
    let prep = preprocess(table, &cfg_preprocess(cfg, table)?)?;
    if prep.model_cols.is_empty() || table.nrows() == 0 {
        // Degenerates to the plain pipeline.
        return crate::pipeline::compress(table, cfg);
    }
    let assignments = kmeans(&prep.x, cfg.n_experts, 25, cfg.seed)?;

    // Train one expert per cluster, each on its own rows only.
    let spec = ModelSpec {
        heads: prep.heads.clone(),
        code_size: cfg.code_size,
        hidden: (prep.heads.len() * 2).max(4),
        linear_single_layer: cfg.linear_single_layer,
        numeric_loss_weight: cfg.numeric_loss_weight,
        aux_width: 4,
    };
    let mut experts = Vec::with_capacity(cfg.n_experts);
    for c in 0..cfg.n_experts {
        let rows: Vec<usize> = assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(r, _)| r)
            .collect();
        let moe_cfg = MoeConfig {
            n_experts: 1,
            batch_size: cfg.batch_size,
            max_epochs: cfg.max_epochs,
            tol: cfg.tol,
            lr: cfg.lr,
            lr_decay: cfg.lr_decay,
            seed: cfg.seed.wrapping_add(c as u64 + 1),
        };
        let (xc, catc) = if rows.is_empty() {
            // Train on one arbitrary row so the expert exists; no rows will
            // ever route to it.
            let fallback_rows = [0usize];
            (
                prep.x.take_rows(&fallback_rows),
                prep.cat_targets
                    .iter()
                    .map(|t| vec![t[0]])
                    .collect::<Vec<_>>(),
            )
        } else {
            (
                prep.x.take_rows(&rows),
                prep.cat_targets
                    .iter()
                    .map(|t| rows.iter().map(|&r| t[r]).collect())
                    .collect(),
            )
        };
        let (m, _) = MoeAutoencoder::train(&spec, &xc, &catc, &moe_cfg)?;
        experts.extend(m.into_experts());
    }
    let mut model = MoeAutoencoder::from_experts(experts);
    if cfg.weight_truncate_bits > 0 && cfg.weight_truncate_bits < 24 {
        model.truncate_weights(cfg.weight_truncate_bits);
    }

    // Reuse the standard materialization with cluster assignments.
    let tc = TrainedCompressor::from_parts(prep, Some(model), cfg.clone(), table.nrows());
    tc.materialize_with_assignments(table, &assignments)
}

fn cfg_preprocess(cfg: &DsConfig, table: &Table) -> Result<crate::preprocess::PreprocessOptions> {
    let error_thresholds = match &cfg.per_column_errors {
        Some(v) => {
            if v.len() != table.ncols() {
                return Err(DsError::InvalidConfig("per_column_errors arity mismatch"));
            }
            v.clone()
        }
        None => vec![cfg.error_threshold; table.ncols()],
    };
    Ok(crate::preprocess::PreprocessOptions {
        error_thresholds,
        high_card_ratio: cfg.high_card_ratio,
        max_train_card: cfg.max_train_card,
        quantize_numerics: cfg.quantize_numerics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::decompress;
    use ds_table::gen;

    #[test]
    fn kmeans_separates_obvious_clusters() {
        // Two tight blobs.
        let mut x = Mat::zeros(100, 2);
        for r in 0..100 {
            let (cx, cy) = if r < 50 { (0.1, 0.1) } else { (0.9, 0.9) };
            x.set(r, 0, cx + 0.01 * ((r % 7) as f32 - 3.0));
            x.set(r, 1, cy + 0.01 * ((r % 5) as f32 - 2.0));
        }
        let assign = kmeans(&x, 2, 20, 1).unwrap();
        // All of blob A in one cluster, all of blob B in the other.
        let a = assign[0];
        assert!(assign[..50].iter().all(|&c| c == a));
        assert!(assign[50..].iter().all(|&c| c != a));
    }

    #[test]
    fn kmeans_handles_k_exceeding_n_and_empty() {
        let x = Mat::zeros(3, 2);
        let assign = kmeans(&x, 10, 5, 2).unwrap();
        assert_eq!(assign.len(), 3);
        let empty = Mat::zeros(0, 2);
        assert!(kmeans(&empty, 2, 5, 3).unwrap().is_empty());
        assert!(kmeans(&x, 0, 5, 4).is_err());
    }

    #[test]
    fn kmeans_deterministic() {
        let mut x = Mat::zeros(60, 3);
        for r in 0..60 {
            for c in 0..3 {
                x.set(r, c, ((r * 3 + c) as f32 * 0.77).sin());
            }
        }
        assert_eq!(kmeans(&x, 4, 15, 7).unwrap(), kmeans(&x, 4, 15, 7).unwrap());
    }

    #[test]
    fn kmeans_compression_roundtrips() {
        let t = gen::monitor_like(300, 3);
        let cfg = DsConfig {
            error_threshold: 0.10,
            n_experts: 3,
            max_epochs: 6,
            ..Default::default()
        };
        let archive = compress_kmeans(&t, &cfg).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), t.nrows());
        // Numeric error bound must hold exactly as in the MoE path.
        for (a, b) in t.columns().iter().zip(restored.columns()) {
            let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
            let min = x.iter().copied().fold(f64::INFINITY, f64::min);
            let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let bound = 0.10 * (max - min) * (1.0 + 1e-7) + 1e-9;
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() <= bound);
            }
        }
    }
}
