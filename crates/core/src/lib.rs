//! # ds-core — DeepSqueeze: deep semantic compression for tabular data
//!
//! A full reproduction of the DeepSqueeze system (Ilkhechi et al., SIGMOD
//! 2020). The compression pipeline follows the paper's three stages:
//!
//! 1. **Preprocessing** ([`preprocess`], §4) — dictionary encoding for
//!    categorical columns (with high-cardinality fallback and skew
//!    clipping), min-max scaling and guaranteed-error-bound quantization
//!    for numeric columns.
//! 2. **Model construction** ([`ds_nn`], §5) — a (mixture of) autoencoder
//!    experts with parameter-shared categorical decoding, trained
//!    end-to-end with a sparsely-gated router, hyperparameters chosen by
//!    Bayesian optimization with increasing sample sizes ([`tune`], §5.4).
//! 3. **Materialization** ([`materialize`], §6) — the decoder weights
//!    (gzip-compressed), truncated-and-integerized codes, columnar-encoded
//!    failures (rank coding for categoricals, XOR bitmaps for binary
//!    columns, bucket-index deltas for numerics) and the expert mapping
//!    (smaller of grouped-indexes vs per-tuple labels).
//!
//! Decompression inverts each step; categorical columns reconstruct
//! exactly, numeric columns within the user's per-column error threshold —
//! an invariant the test suite enforces on every dataset.
//!
//! ## Quick example
//!
//! ```
//! use ds_core::{compress, decompress, DsConfig};
//! use ds_table::gen;
//!
//! let table = gen::monitor_like(512, 42);
//! let cfg = DsConfig {
//!     error_threshold: 0.05,
//!     max_epochs: 5, // keep the doctest fast; defaults train longer
//!     ..DsConfig::default()
//! };
//! let archive = compress(&table, &cfg).unwrap();
//! assert!(archive.size() < table.raw_size());
//! let restored = decompress(&archive).unwrap();
//! assert_eq!(restored.nrows(), table.nrows());
//! ```

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit loops
#![allow(clippy::type_complexity)] // index-heavy numeric kernels read clearer with explicit loops

pub mod archive;
pub mod cluster;
pub mod materialize;
pub mod pipeline;
pub mod preprocess;
pub mod source;
pub mod stream;
pub mod tune;

pub use archive::{container_kind, inspect, ArchiveInfo, ContainerKind, DsArchive, SizeBreakdown};
pub use pipeline::{
    compress, compress_sharded_to, decompress, decompress_rows, decompress_rows_with_stats,
    DsConfig, ShardDecoder, ShardedCompression, ShardedDecodeStats, TrainedCompressor,
};
pub use source::{open_source, open_source_reader, OpenedSource, SourceKind};
pub use stream::{compress_csv_stream_to, compress_stream_to, CsvStreamInfo};
pub use tune::{tune, TuneConfig, TuneOutcome};

/// Errors surfaced by the DeepSqueeze pipeline.
#[derive(Debug)]
pub enum DsError {
    /// Configuration problem (with detail).
    InvalidConfig(&'static str),
    /// Corrupt or truncated archive.
    Corrupt(&'static str),
    /// Propagated neural-network failure.
    Nn(ds_nn::NnError),
    /// Propagated codec failure.
    Codec(ds_codec::CodecError),
    /// Propagated sharded-container failure (framing, CRC, manifest).
    Shard(ds_shard::ShardError),
    /// Propagated table failure.
    Table(ds_table::TableError),
    /// Propagated tuner failure.
    BayesOpt(ds_bayesopt::BayesOptError),
    /// A shard of a sharded compression failed; names the shard index and
    /// the row range it covered so multi-gigabyte runs are debuggable.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// Original-table row range the shard covered.
        rows: std::ops::Range<usize>,
        /// The underlying failure.
        source: Box<DsError>,
    },
}

impl std::fmt::Display for DsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsError::InvalidConfig(w) => write!(f, "invalid config: {w}"),
            DsError::Corrupt(w) => write!(f, "corrupt archive: {w}"),
            DsError::Nn(e) => write!(f, "model error: {e}"),
            DsError::Codec(e) => write!(f, "codec error: {e}"),
            DsError::Shard(e) => write!(f, "shard container error: {e}"),
            DsError::Table(e) => write!(f, "table error: {e}"),
            DsError::BayesOpt(e) => write!(f, "tuning error: {e}"),
            DsError::ShardFailed {
                shard,
                rows,
                source,
            } => {
                write!(
                    f,
                    "shard {shard} (rows {}..{}): {source}",
                    rows.start, rows.end
                )
            }
        }
    }
}

impl std::error::Error for DsError {}

impl From<ds_nn::NnError> for DsError {
    fn from(e: ds_nn::NnError) -> Self {
        DsError::Nn(e)
    }
}

impl From<ds_codec::CodecError> for DsError {
    fn from(e: ds_codec::CodecError) -> Self {
        DsError::Codec(e)
    }
}

impl From<ds_shard::ShardError> for DsError {
    fn from(e: ds_shard::ShardError) -> Self {
        DsError::Shard(e)
    }
}

impl From<ds_table::TableError> for DsError {
    fn from(e: ds_table::TableError) -> Self {
        DsError::Table(e)
    }
}

impl From<ds_bayesopt::BayesOptError> for DsError {
    fn from(e: ds_bayesopt::BayesOptError) -> Self {
        DsError::BayesOpt(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DsError>;
