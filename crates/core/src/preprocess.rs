//! Preprocessing (§4): converts a table into model-ready matrices.
//!
//! Per column:
//!
//! * **Categorical** (§4.1) — dictionary-encoded. Columns whose cardinality
//!   approaches the row count (unique strings, keys) are *excluded from the
//!   model* and fall back to plain columnar compression. Skewed wide
//!   columns are clipped for training: only the most frequent values keep
//!   their own class, the tail shares an OTHER class, and exact tail values
//!   ride a side stream ("the small additional overhead associated with
//!   mispredicting infrequent values is offset by the substantial reduction
//!   in model size").
//! * **Binary** — two-valued categoricals become single-node heads with the
//!   XOR failure encoding downstream.
//! * **Numeric** (§4.2) — min-max scaled to [0,1] and quantized to bucket
//!   midpoints under the column's error threshold. With quantization
//!   disabled (the Fig. 7 ablation) the raw scaled value feeds the model
//!   and failures are stored as continuous deltas.

use crate::{DsError, Result};
use ds_codec::dict::Dictionary;
use ds_codec::quant::Quantizer;
use ds_codec::{ByteReader, ByteWriter};
use ds_nn::autoencoder::Head;
use ds_nn::Mat;
use ds_table::{Column, Table};
use std::collections::HashMap;

/// How one original column participates in the pipeline.
#[derive(Debug, Clone)]
pub enum ColPlan {
    /// Quantized numeric column (model-visible, 1 node).
    Numeric {
        /// Fitted quantizer (Exact when the threshold is 0).
        quantizer: Quantizer,
        /// Min of the column at fit time (for scaling).
        min: f64,
        /// Max of the column at fit time.
        max: f64,
    },
    /// Unquantized numeric column — the "no quantization" ablation. The
    /// error threshold is still honoured at materialization time.
    NumericRaw {
        /// Min of the column at fit time.
        min: f64,
        /// Max of the column at fit time.
        max: f64,
        /// Error threshold (fraction of range).
        error: f64,
    },
    /// Two-valued categorical (model-visible, 1 node, XOR failures).
    Binary {
        /// Value dictionary (exactly 2 entries; 1 entry degenerates fine).
        dict: Dictionary,
    },
    /// Categorical (model-visible via the shared softmax head).
    Cat {
        /// Full value dictionary.
        dict: Dictionary,
        /// Number of model classes (≤ dict len; the last class is OTHER
        /// when smaller).
        model_card: usize,
        /// Model class → global dictionary code for the non-OTHER classes
        /// (length `model_card` when no OTHER, `model_card - 1` with).
        class_to_code: Vec<u32>,
    },
    /// Bypasses the model entirely; stored via the columnar fallback.
    Fallback,
}

impl ColPlan {
    /// The model head this plan contributes, if any.
    pub fn head(&self) -> Option<Head> {
        match self {
            ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. } => Some(Head::Numeric),
            ColPlan::Binary { .. } => Some(Head::Binary),
            ColPlan::Cat { model_card, .. } => Some(Head::Categorical { card: *model_card }),
            ColPlan::Fallback => None,
        }
    }

    /// True when this plan has an OTHER class for clipped tail values.
    pub fn has_other_class(&self) -> bool {
        match self {
            ColPlan::Cat {
                dict, model_card, ..
            } => *model_card < dict.len(),
            _ => false,
        }
    }

    /// Serializes the plan.
    pub fn write_to(&self, w: &mut ByteWriter) {
        match self {
            ColPlan::Numeric {
                quantizer,
                min,
                max,
            } => {
                w.write_u8(0);
                quantizer.write_to(w);
                w.write_f64(*min);
                w.write_f64(*max);
            }
            ColPlan::NumericRaw { min, max, error } => {
                w.write_u8(1);
                w.write_f64(*min);
                w.write_f64(*max);
                w.write_f64(*error);
            }
            ColPlan::Binary { dict } => {
                w.write_u8(2);
                dict.write_to(w);
            }
            ColPlan::Cat {
                dict,
                model_card,
                class_to_code,
            } => {
                w.write_u8(3);
                dict.write_to(w);
                w.write_varint(*model_card as u64);
                w.write_varint(class_to_code.len() as u64);
                for &c in class_to_code {
                    w.write_varint(u64::from(c));
                }
            }
            ColPlan::Fallback => w.write_u8(4),
        }
    }

    /// Reads a plan written by [`ColPlan::write_to`].
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(match r.read_u8()? {
            0 => ColPlan::Numeric {
                quantizer: Quantizer::read_from(r)?,
                min: r.read_f64()?,
                max: r.read_f64()?,
            },
            1 => ColPlan::NumericRaw {
                min: r.read_f64()?,
                max: r.read_f64()?,
                error: r.read_f64()?,
            },
            2 => ColPlan::Binary {
                dict: Dictionary::read_from(r)?,
            },
            3 => {
                let dict = Dictionary::read_from(r)?;
                let model_card = r.read_varint()? as usize;
                let n = r.read_varint()? as usize;
                if n > dict.len().max(1) {
                    return Err(DsError::Corrupt("class map larger than dictionary"));
                }
                let mut class_to_code = Vec::with_capacity(n);
                for _ in 0..n {
                    class_to_code.push(r.read_varint()? as u32);
                }
                ColPlan::Cat {
                    dict,
                    model_card,
                    class_to_code,
                }
            }
            4 => ColPlan::Fallback,
            _ => return Err(DsError::Corrupt("unknown column plan tag")),
        })
    }
}

/// Everything the trainer and materializer need about a preprocessed table.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Per original column.
    pub plans: Vec<ColPlan>,
    /// Original column index of each model-visible column, in model order.
    pub model_cols: Vec<usize>,
    /// Heads aligned with `model_cols`.
    pub heads: Vec<Head>,
    /// Model input matrix, `nrows × model_cols.len()`, all values in [0,1].
    pub x: Mat,
    /// Training targets for categorical heads (model-class codes, clamped
    /// to OTHER), aligned with the categorical heads in model order.
    pub cat_targets: Vec<Vec<u32>>,
    /// Per original column: the discretized "true" codes used by
    /// materialization (bucket indexes / dict codes / bits). `None` for
    /// fallback and raw-numeric columns.
    pub true_codes: Vec<Option<Vec<u32>>>,
}

/// Preprocessing knobs (a subset of [`crate::DsConfig`]).
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Per-column relative error bound for numeric columns.
    pub error_thresholds: Vec<f64>,
    /// Categorical columns with `distinct/rows` above this (and more than
    /// 64 distinct values) bypass the model.
    pub high_card_ratio: f64,
    /// Maximum model classes per categorical column (skew clipping).
    pub max_train_card: usize,
    /// Fig. 7 ablation: disable quantization.
    pub quantize_numerics: bool,
}

/// Runs preprocessing over a table.
pub fn preprocess(table: &Table, opts: &PreprocessOptions) -> Result<Preprocessed> {
    if opts.error_thresholds.len() != table.ncols() {
        return Err(DsError::InvalidConfig(
            "one error threshold per column required",
        ));
    }
    if opts.max_train_card < 3 {
        return Err(DsError::InvalidConfig("max_train_card must be >= 3"));
    }
    let n = table.nrows();

    let mut plans = Vec::with_capacity(table.ncols());
    let mut true_codes: Vec<Option<Vec<u32>>> = Vec::with_capacity(table.ncols());

    for (i, col) in table.columns().iter().enumerate() {
        match col {
            Column::Num(values) => {
                let error = opts.error_thresholds[i];
                if !(0.0..=1.0).contains(&error) {
                    return Err(DsError::InvalidConfig("error threshold not in [0,1]"));
                }
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let (min, max) = if values.is_empty() {
                    (0.0, 0.0)
                } else {
                    (min, max)
                };
                if opts.quantize_numerics {
                    let quantizer = Quantizer::fit(values, error)?;
                    true_codes.push(Some(quantizer.encode_column(values)));
                    plans.push(ColPlan::Numeric {
                        quantizer,
                        min,
                        max,
                    });
                } else {
                    true_codes.push(None);
                    plans.push(ColPlan::NumericRaw { min, max, error });
                }
            }
            Column::Cat(values) => {
                let (dict, codes) = Dictionary::encode_column(values);
                let distinct = dict.len();
                let too_wide =
                    n > 0 && distinct > 64 && distinct as f64 > opts.high_card_ratio * n as f64;
                if too_wide {
                    plans.push(ColPlan::Fallback);
                    true_codes.push(None);
                } else if distinct <= 2 {
                    plans.push(ColPlan::Binary { dict });
                    true_codes.push(Some(codes));
                } else if distinct <= opts.max_train_card {
                    let class_to_code = (0..distinct as u32).collect();
                    plans.push(ColPlan::Cat {
                        dict,
                        model_card: distinct,
                        class_to_code,
                    });
                    true_codes.push(Some(codes));
                } else {
                    // Skew clipping: top (max_train_card - 1) values keep a
                    // class; everything else shares OTHER.
                    let mut freq: HashMap<u32, u64> = HashMap::new();
                    for &c in &codes {
                        *freq.entry(c).or_default() += 1;
                    }
                    // ds-lint: allow(deterministic-iteration) -- collected pairs are fully sorted on the next statement before any order-sensitive use
                    let mut by_freq: Vec<(u32, u64)> = freq.into_iter().collect();
                    // Sort by (count desc, code asc) for determinism.
                    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    let keep = opts.max_train_card - 1;
                    let class_to_code: Vec<u32> =
                        by_freq.iter().take(keep).map(|&(c, _)| c).collect();
                    plans.push(ColPlan::Cat {
                        dict,
                        model_card: opts.max_train_card,
                        class_to_code,
                    });
                    true_codes.push(Some(codes));
                }
            }
        }
    }

    // Model-visible columns and heads.
    let mut model_cols = Vec::new();
    let mut heads = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        if let Some(h) = plan.head() {
            model_cols.push(i);
            heads.push(h);
        }
    }
    if model_cols.is_empty() && table.ncols() > 0 {
        // Entirely fallback table: legal, the pipeline skips the model.
    }

    // Build the input matrix and categorical targets.
    let mut x = Mat::zeros(n, model_cols.len());
    let mut cat_targets: Vec<Vec<u32>> = Vec::new();
    for (slot, &i) in model_cols.iter().enumerate() {
        match (&plans[i], table.column(i).expect("valid index")) {
            (
                ColPlan::Numeric {
                    quantizer,
                    min,
                    max,
                },
                Column::Num(_),
            ) => {
                let codes = true_codes[i].as_ref().expect("numeric has codes");
                let span = (max - min).max(f64::MIN_POSITIVE);
                for (r, &code) in codes.iter().enumerate() {
                    let mid = quantizer.value_of(code);
                    x.set(r, slot, (((mid - min) / span).clamp(0.0, 1.0)) as f32);
                }
            }
            (ColPlan::NumericRaw { min, max, .. }, Column::Num(values)) => {
                let span = (max - min).max(f64::MIN_POSITIVE);
                for (r, &v) in values.iter().enumerate() {
                    x.set(r, slot, (((v - min) / span).clamp(0.0, 1.0)) as f32);
                }
            }
            (ColPlan::Binary { .. }, Column::Cat(_)) => {
                let codes = true_codes[i].as_ref().expect("binary has codes");
                for (r, &code) in codes.iter().enumerate() {
                    x.set(r, slot, code as f32);
                }
            }
            (
                ColPlan::Cat {
                    model_card,
                    class_to_code,
                    ..
                },
                Column::Cat(_),
            ) => {
                let codes = true_codes[i].as_ref().expect("cat has codes");
                // global code → model class (OTHER = model_card - 1).
                let mut code_to_class: HashMap<u32, u32> = HashMap::new();
                for (class, &code) in class_to_code.iter().enumerate() {
                    code_to_class.insert(code, class as u32);
                }
                let other = (*model_card - 1) as u32;
                let has_other = class_to_code.len() < *model_card;
                let mut targets = Vec::with_capacity(n);
                let denom = (*model_card - 1).max(1) as f32;
                for (r, &code) in codes.iter().enumerate() {
                    let class = match code_to_class.get(&code) {
                        Some(&c) => c,
                        None if has_other => other,
                        // Without an OTHER class every code is mapped.
                        None => unreachable!("full class map covers all codes"),
                    };
                    targets.push(class);
                    x.set(r, slot, class as f32 / denom);
                }
                cat_targets.push(targets);
            }
            _ => unreachable!("plan/column type mismatch is prevented at construction"),
        }
    }

    Ok(Preprocessed {
        plans,
        model_cols,
        heads,
        x,
        cat_targets,
        true_codes,
    })
}

/// A cell that the fitted plans cannot represent (unseen categorical
/// value, numeric outside the fitted quantizer's error envelope). Patches
/// are stored verbatim in the archive and applied after reconstruction —
/// the mechanism behind the streaming scenario (§3), where batches arrive
/// after the model was fitted.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Original column index.
    pub col: usize,
    /// Original row index.
    pub row: usize,
    /// Exact replacement value.
    pub value: PatchValue,
}

/// Patch payload.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchValue {
    /// Exact numeric value.
    Num(f64),
    /// Exact string value.
    Str(String),
}

/// Applies *fitted* plans to a new table (same schema), producing model
/// inputs plus patches for every cell the plans cannot represent.
///
/// Unlike [`preprocess`], nothing is re-fitted: dictionaries, quantizers
/// and scaling ranges come from the plans. This is the encoder the
/// streaming scenario pushes to clients.
pub fn apply_plans(table: &Table, plans: &[ColPlan]) -> Result<(Preprocessed, Vec<Patch>)> {
    if plans.len() != table.ncols() {
        return Err(DsError::InvalidConfig("plan arity mismatch"));
    }
    for (i, plan) in plans.iter().enumerate() {
        let col = table.column(i).expect("arity checked");
        let ok = matches!(
            (plan, col),
            (
                ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. },
                Column::Num(_)
            ) | (
                ColPlan::Binary { .. } | ColPlan::Cat { .. } | ColPlan::Fallback,
                Column::Cat(_)
            )
        );
        if !ok {
            return Err(DsError::InvalidConfig("plan/column type mismatch"));
        }
    }
    let n = table.nrows();
    let mut patches = Vec::new();
    let mut true_codes: Vec<Option<Vec<u32>>> = Vec::with_capacity(plans.len());
    let mut model_cols = Vec::new();
    let mut heads = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        if let Some(h) = plan.head() {
            model_cols.push(i);
            heads.push(h);
        }
        match (plan, table.column(i).expect("arity checked")) {
            (ColPlan::Numeric { quantizer, .. }, Column::Num(values)) => {
                let tol = quantizer.max_abs_error() * (1.0 + 1e-9) + 1e-12;
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(r, &v)| {
                        let idx = quantizer.index_of(v);
                        if (quantizer.value_of(idx) - v).abs() > tol {
                            patches.push(Patch {
                                col: i,
                                row: r,
                                value: PatchValue::Num(v),
                            });
                        }
                        idx
                    })
                    .collect();
                true_codes.push(Some(codes));
            }
            (ColPlan::NumericRaw { .. }, Column::Num(_)) => {
                // Raw numeric failures store exact deltas; nothing to patch.
                true_codes.push(None);
            }
            (ColPlan::Binary { dict }, Column::Cat(values)) => {
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(r, v)| match dict.code_of(v) {
                        Some(c) => c,
                        None => {
                            patches.push(Patch {
                                col: i,
                                row: r,
                                value: PatchValue::Str(v.clone()),
                            });
                            0
                        }
                    })
                    .collect();
                true_codes.push(Some(codes));
            }
            (ColPlan::Cat { dict, .. }, Column::Cat(values)) => {
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(r, v)| match dict.code_of(v) {
                        Some(c) => c,
                        None => {
                            patches.push(Patch {
                                col: i,
                                row: r,
                                value: PatchValue::Str(v.clone()),
                            });
                            0
                        }
                    })
                    .collect();
                true_codes.push(Some(codes));
            }
            (ColPlan::Fallback, Column::Cat(_)) => true_codes.push(None),
            _ => unreachable!("type agreement checked above"),
        }
    }

    // Build x / cat_targets exactly as `preprocess` does, from the codes.
    let mut x = ds_nn::Mat::zeros(n, model_cols.len());
    let mut cat_targets: Vec<Vec<u32>> = Vec::new();
    for (slot, &i) in model_cols.iter().enumerate() {
        match (&plans[i], table.column(i).expect("arity checked")) {
            (
                ColPlan::Numeric {
                    quantizer,
                    min,
                    max,
                },
                Column::Num(_),
            ) => {
                let codes = true_codes[i].as_ref().expect("numeric has codes");
                let span = (max - min).max(f64::MIN_POSITIVE);
                for (r, &code) in codes.iter().enumerate() {
                    let mid = quantizer.value_of(code);
                    x.set(r, slot, (((mid - min) / span).clamp(0.0, 1.0)) as f32);
                }
            }
            (ColPlan::NumericRaw { min, max, .. }, Column::Num(values)) => {
                let span = (max - min).max(f64::MIN_POSITIVE);
                for (r, &v) in values.iter().enumerate() {
                    x.set(r, slot, (((v - min) / span).clamp(0.0, 1.0)) as f32);
                }
            }
            (ColPlan::Binary { .. }, Column::Cat(_)) => {
                let codes = true_codes[i].as_ref().expect("binary has codes");
                for (r, &code) in codes.iter().enumerate() {
                    x.set(r, slot, (code.min(1)) as f32);
                }
            }
            (
                ColPlan::Cat {
                    model_card,
                    class_to_code,
                    ..
                },
                Column::Cat(_),
            ) => {
                let codes = true_codes[i].as_ref().expect("cat has codes");
                let denom = (*model_card - 1).max(1) as f32;
                let mut targets = Vec::with_capacity(n);
                for (r, &code) in codes.iter().enumerate() {
                    let class = class_of_code(class_to_code, *model_card, code);
                    targets.push(class);
                    x.set(r, slot, class as f32 / denom);
                }
                cat_targets.push(targets);
            }
            _ => unreachable!(),
        }
    }

    Ok((
        Preprocessed {
            plans: plans.to_vec(),
            model_cols,
            heads,
            x,
            cat_targets,
            true_codes,
        },
        patches,
    ))
}

/// Maps a global dictionary code to its model class under a Cat plan.
pub fn class_of_code(class_to_code: &[u32], model_card: usize, code: u32) -> u32 {
    match class_to_code.iter().position(|&c| c == code) {
        Some(class) => class as u32,
        None => (model_card - 1) as u32, // OTHER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::gen;

    fn opts(ncols: usize, error: f64) -> PreprocessOptions {
        PreprocessOptions {
            error_thresholds: vec![error; ncols],
            high_card_ratio: 0.5,
            max_train_card: 64,
            quantize_numerics: true,
        }
    }

    #[test]
    fn numeric_inputs_scaled_to_unit_interval() {
        let t = gen::monitor_like(200, 1);
        let p = preprocess(&t, &opts(t.ncols(), 0.05)).unwrap();
        assert_eq!(p.x.cols(), 17);
        for &v in p.x.data() {
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
        // All columns are model-visible numerics.
        assert_eq!(p.heads.len(), 17);
        assert!(p.heads.iter().all(|h| matches!(h, Head::Numeric)));
        assert!(p.cat_targets.is_empty());
    }

    #[test]
    fn binary_columns_become_binary_heads() {
        let t = gen::forest_like(150, 2);
        let p = preprocess(&t, &opts(t.ncols(), 0.1)).unwrap();
        let binary_heads = p.heads.iter().filter(|h| matches!(h, Head::Binary)).count();
        // 4 wilderness + 40 soil one-hot columns are binary.
        assert_eq!(binary_heads, 44);
        let cat_heads = p
            .heads
            .iter()
            .filter(|h| matches!(h, Head::Categorical { .. }))
            .count();
        assert_eq!(cat_heads, 1); // cover type
        assert_eq!(p.cat_targets.len(), 1);
    }

    #[test]
    fn high_cardinality_columns_fall_back() {
        let t = gen::criteo_like(400, 3);
        let p = preprocess(&t, &opts(t.ncols(), 0.1)).unwrap();
        let fallbacks = p
            .plans
            .iter()
            .filter(|p| matches!(p, ColPlan::Fallback))
            .count();
        assert_eq!(fallbacks, 2, "the two hash columns must fall back");
        // Fallback columns contribute no head.
        assert_eq!(p.heads.len(), t.ncols() - 2);
    }

    #[test]
    fn skew_clipping_creates_other_class() {
        // One categorical column with 100 distinct skewed values.
        let values: Vec<String> = (0..2000)
            .map(|i| format!("v{}", if i % 3 == 0 { i % 100 } else { i % 5 }))
            .collect();
        let t = ds_table::Table::from_columns(vec![("c".into(), ds_table::Column::Cat(values))])
            .unwrap();
        let mut o = opts(1, 0.0);
        o.max_train_card = 16;
        let p = preprocess(&t, &o).unwrap();
        match &p.plans[0] {
            ColPlan::Cat {
                dict,
                model_card,
                class_to_code,
            } => {
                assert_eq!(*model_card, 16);
                assert_eq!(class_to_code.len(), 15);
                assert!(dict.len() > 16);
                assert!(p.plans[0].has_other_class());
            }
            other => panic!("wrong plan {other:?}"),
        }
        // Targets stay within model_card.
        assert!(p.cat_targets[0].iter().all(|&c| c < 16));
        // The frequent values map to themselves (head classes), and some
        // rows land in OTHER.
        assert!(p.cat_targets[0].contains(&15));
    }

    #[test]
    fn quantization_codes_respect_error_bound() {
        let t = gen::corel_like(300, 5);
        let p = preprocess(&t, &opts(t.ncols(), 0.10)).unwrap();
        for (i, plan) in p.plans.iter().enumerate() {
            if let ColPlan::Numeric { quantizer, .. } = plan {
                let original = t.column(i).unwrap().as_num().unwrap();
                let codes = p.true_codes[i].as_ref().unwrap();
                for (&v, &c) in original.iter().zip(codes) {
                    let rec = quantizer.value_of(c);
                    assert!((rec - v).abs() <= quantizer.max_abs_error() + 1e-12);
                }
            } else {
                panic!("corel is all numeric");
            }
        }
    }

    #[test]
    fn no_quantization_option_keeps_raw_values() {
        let t = gen::monitor_like(100, 7);
        let mut o = opts(t.ncols(), 0.10);
        o.quantize_numerics = false;
        let p = preprocess(&t, &o).unwrap();
        assert!(p
            .plans
            .iter()
            .all(|pl| matches!(pl, ColPlan::NumericRaw { .. })));
        assert!(p.true_codes.iter().all(Option::is_none));
    }

    #[test]
    fn plan_serialization_roundtrip() {
        let t = gen::criteo_like(300, 11);
        let mut o = opts(t.ncols(), 0.05);
        o.max_train_card = 32;
        let p = preprocess(&t, &o).unwrap();
        for plan in &p.plans {
            let mut w = ByteWriter::new();
            plan.write_to(&mut w);
            let bytes = w.into_vec();
            let mut r = ByteReader::new(&bytes);
            let restored = ColPlan::read_from(&mut r).unwrap();
            // Compare via re-serialization (ColPlan has no PartialEq since
            // Quantizer holds floats compared bitwise there).
            let mut w2 = ByteWriter::new();
            restored.write_to(&mut w2);
            assert_eq!(w2.as_slice(), bytes.as_slice());
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let t = gen::corel_like(10, 1);
        assert!(preprocess(
            &t,
            &PreprocessOptions {
                error_thresholds: vec![0.1; 3], // wrong arity
                high_card_ratio: 0.5,
                max_train_card: 64,
                quantize_numerics: true,
            }
        )
        .is_err());
        let mut o = opts(t.ncols(), 0.1);
        o.max_train_card = 2;
        assert!(preprocess(&t, &o).is_err());
        let o = opts(t.ncols(), 1.5);
        assert!(preprocess(&t, &o).is_err());
    }

    #[test]
    fn class_of_code_maps_other() {
        let map = vec![10u32, 20, 30];
        assert_eq!(class_of_code(&map, 4, 20), 1);
        assert_eq!(class_of_code(&map, 4, 99), 3); // OTHER
    }
}
