//! Preprocessing (§4): converts a table into model-ready matrices.
//!
//! Per column:
//!
//! * **Categorical** (§4.1) — dictionary-encoded. Columns whose cardinality
//!   approaches the row count (unique strings, keys) are *excluded from the
//!   model* and fall back to plain columnar compression. Skewed wide
//!   columns are clipped for training: only the most frequent values keep
//!   their own class, the tail shares an OTHER class, and exact tail values
//!   ride a side stream ("the small additional overhead associated with
//!   mispredicting infrequent values is offset by the substantial reduction
//!   in model size").
//! * **Binary** — two-valued categoricals become single-node heads with the
//!   XOR failure encoding downstream.
//! * **Numeric** (§4.2) — min-max scaled to [0,1] and quantized to bucket
//!   midpoints under the column's error threshold. With quantization
//!   disabled (the Fig. 7 ablation) the raw scaled value feeds the model
//!   and failures are stored as continuous deltas.

use crate::{DsError, Result};
use ds_codec::dict::Dictionary;
use ds_codec::quant::Quantizer;
use ds_codec::{ByteReader, ByteWriter, CodecError};
use ds_nn::autoencoder::Head;
use ds_nn::Mat;
use ds_table::{Column, ColumnType, Schema, Table};
use std::collections::BTreeSet;

/// How one original column participates in the pipeline.
#[derive(Debug, Clone)]
pub enum ColPlan {
    /// Quantized numeric column (model-visible, 1 node).
    Numeric {
        /// Fitted quantizer (Exact when the threshold is 0).
        quantizer: Quantizer,
        /// Min of the column at fit time (for scaling).
        min: f64,
        /// Max of the column at fit time.
        max: f64,
    },
    /// Unquantized numeric column — the "no quantization" ablation. The
    /// error threshold is still honoured at materialization time.
    NumericRaw {
        /// Min of the column at fit time.
        min: f64,
        /// Max of the column at fit time.
        max: f64,
        /// Error threshold (fraction of range).
        error: f64,
    },
    /// Two-valued categorical (model-visible, 1 node, XOR failures).
    Binary {
        /// Value dictionary (exactly 2 entries; 1 entry degenerates fine).
        dict: Dictionary,
    },
    /// Categorical (model-visible via the shared softmax head).
    Cat {
        /// Full value dictionary.
        dict: Dictionary,
        /// Number of model classes (≤ dict len; the last class is OTHER
        /// when smaller).
        model_card: usize,
        /// Model class → global dictionary code for the non-OTHER classes
        /// (length `model_card` when no OTHER, `model_card - 1` with).
        class_to_code: Vec<u32>,
    },
    /// Bypasses the model entirely; stored via the columnar fallback.
    Fallback,
}

impl ColPlan {
    /// The model head this plan contributes, if any.
    pub fn head(&self) -> Option<Head> {
        match self {
            ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. } => Some(Head::Numeric),
            ColPlan::Binary { .. } => Some(Head::Binary),
            ColPlan::Cat { model_card, .. } => Some(Head::Categorical { card: *model_card }),
            ColPlan::Fallback => None,
        }
    }

    /// True when this plan has an OTHER class for clipped tail values.
    pub fn has_other_class(&self) -> bool {
        match self {
            ColPlan::Cat {
                dict, model_card, ..
            } => *model_card < dict.len(),
            _ => false,
        }
    }

    /// Serializes the plan.
    pub fn write_to(&self, w: &mut ByteWriter) {
        match self {
            ColPlan::Numeric {
                quantizer,
                min,
                max,
            } => {
                w.write_u8(0);
                quantizer.write_to(w);
                w.write_f64(*min);
                w.write_f64(*max);
            }
            ColPlan::NumericRaw { min, max, error } => {
                w.write_u8(1);
                w.write_f64(*min);
                w.write_f64(*max);
                w.write_f64(*error);
            }
            ColPlan::Binary { dict } => {
                w.write_u8(2);
                dict.write_to(w);
            }
            ColPlan::Cat {
                dict,
                model_card,
                class_to_code,
            } => {
                w.write_u8(3);
                dict.write_to(w);
                w.write_varint(*model_card as u64);
                w.write_varint(class_to_code.len() as u64);
                for &c in class_to_code {
                    w.write_varint(u64::from(c));
                }
            }
            ColPlan::Fallback => w.write_u8(4),
        }
    }

    /// Reads a plan written by [`ColPlan::write_to`].
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(match r.read_u8()? {
            0 => ColPlan::Numeric {
                quantizer: Quantizer::read_from(r)?,
                min: r.read_f64()?,
                max: r.read_f64()?,
            },
            1 => ColPlan::NumericRaw {
                min: r.read_f64()?,
                max: r.read_f64()?,
                error: r.read_f64()?,
            },
            2 => ColPlan::Binary {
                dict: Dictionary::read_from(r)?,
            },
            3 => {
                let dict = Dictionary::read_from(r)?;
                let model_card = r.read_varint()? as usize;
                let n = r.read_varint()? as usize;
                if n > dict.len().max(1) {
                    return Err(DsError::Corrupt("class map larger than dictionary"));
                }
                let mut class_to_code = Vec::with_capacity(n);
                for _ in 0..n {
                    class_to_code.push(r.read_varint()? as u32);
                }
                ColPlan::Cat {
                    dict,
                    model_card,
                    class_to_code,
                }
            }
            4 => ColPlan::Fallback,
            _ => return Err(DsError::Corrupt("unknown column plan tag")),
        })
    }
}

/// Everything the trainer and materializer need about a preprocessed table.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Per original column.
    pub plans: Vec<ColPlan>,
    /// Original column index of each model-visible column, in model order.
    pub model_cols: Vec<usize>,
    /// Heads aligned with `model_cols`.
    pub heads: Vec<Head>,
    /// Model input matrix, `nrows × model_cols.len()`, all values in [0,1].
    pub x: Mat,
    /// Training targets for categorical heads (model-class codes, clamped
    /// to OTHER), aligned with the categorical heads in model order.
    pub cat_targets: Vec<Vec<u32>>,
    /// Per original column: the discretized "true" codes used by
    /// materialization (bucket indexes / dict codes / bits). `None` for
    /// fallback and raw-numeric columns.
    pub true_codes: Vec<Option<Vec<u32>>>,
}

/// Preprocessing knobs (a subset of [`crate::DsConfig`]).
#[derive(Debug, Clone)]
pub struct PreprocessOptions {
    /// Per-column relative error bound for numeric columns.
    pub error_thresholds: Vec<f64>,
    /// Categorical columns with `distinct/rows` above this (and more than
    /// 64 distinct values) bypass the model.
    pub high_card_ratio: f64,
    /// Maximum model classes per categorical column (skew clipping).
    pub max_train_card: usize,
    /// Fig. 7 ablation: disable quantization.
    pub quantize_numerics: bool,
}

/// Hard cap on a streaming dictionary's size. A categorical column that
/// exceeds this many distinct values is forced onto the columnar
/// [`ColPlan::Fallback`] path — unbounded dictionaries would defeat the
/// streaming pipeline's O(chunk + sample + model) memory contract, and a
/// column this wide is a poor model input anyway. The rule is monotone
/// (applied identically however the rows are chunked) so plans never
/// depend on chunk size.
pub const DICT_CAP: usize = 1 << 16;

/// `f64` → `u64` key that sorts (as unsigned) exactly like
/// [`f64::total_cmp`] orders the floats. Lets a `BTreeSet<u64>` reproduce
/// the sorted-dedup-by-bits behaviour of [`Quantizer::fit`] incrementally.
fn total_order_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// Inverse of [`total_order_key`].
fn total_order_value(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & 0x7FFF_FFFF_FFFF_FFFF)
    } else {
        f64::from_bits(!k)
    }
}

/// One-pass accumulator for a numeric column: the running min/max, NaN
/// sighting, and (only when a lossless `error = 0` quantizer will be fit)
/// the distinct value set in total order.
#[derive(Debug, Clone)]
pub struct NumColStats {
    min: f64,
    max: f64,
    count: usize,
    saw_nan: bool,
    distinct: Option<BTreeSet<u64>>,
}

impl NumColStats {
    pub(crate) fn new(track_distinct: bool) -> Self {
        NumColStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
            saw_nan: false,
            distinct: track_distinct.then(BTreeSet::new),
        }
    }

    pub(crate) fn push(&mut self, v: f64) {
        self.count += 1;
        if v.is_nan() {
            self.saw_nan = true;
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if let Some(d) = &mut self.distinct {
            d.insert(total_order_key(v));
        }
    }

    fn merge(&mut self, other: &NumColStats) {
        self.count += other.count;
        self.saw_nan |= other.saw_nan;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if let (Some(d), Some(o)) = (&mut self.distinct, &other.distinct) {
            d.extend(o.iter().copied());
        }
    }
}

/// One-pass accumulator for a categorical column: the first-appearance
/// dictionary plus per-code frequencies, capped at [`DICT_CAP`] distinct
/// values (past the cap the column is marked for fallback and the
/// dictionary is dropped, bounding memory).
#[derive(Debug, Clone)]
pub struct CatColStats {
    dict: Dictionary,
    freq: Vec<u64>,
    count: usize,
    overflowed: bool,
}

impl CatColStats {
    pub(crate) fn new() -> Self {
        CatColStats {
            dict: Dictionary::new(),
            freq: Vec::new(),
            count: 0,
            overflowed: false,
        }
    }

    pub(crate) fn push(&mut self, v: &str) {
        self.count += 1;
        if self.overflowed {
            return;
        }
        let code = self.dict.intern(v) as usize;
        if self.dict.len() > DICT_CAP {
            self.overflow();
            return;
        }
        if code == self.freq.len() {
            self.freq.push(0);
        }
        self.freq[code] += 1;
    }

    fn overflow(&mut self) {
        self.overflowed = true;
        self.dict = Dictionary::new();
        self.freq = Vec::new();
    }

    /// Ordered merge: `other` must hold the rows that followed `self`'s.
    fn merge(&mut self, other: &CatColStats) {
        self.count += other.count;
        if self.overflowed {
            return;
        }
        if other.overflowed {
            self.overflow();
            return;
        }
        for (value, &n) in other.dict.values().zip(&other.freq) {
            let code = self.dict.intern(value) as usize;
            if self.dict.len() > DICT_CAP {
                self.overflow();
                return;
            }
            if code == self.freq.len() {
                self.freq.push(0);
            }
            self.freq[code] += n;
        }
    }
}

/// Streaming statistics for one column.
#[derive(Debug, Clone)]
pub enum ColumnStats {
    /// Numeric column accumulator.
    Num(NumColStats),
    /// Categorical column accumulator.
    Cat(CatColStats),
}

/// Mergeable one-pass statistics over a whole table, fed chunk by chunk.
/// This is pass 1 of the streaming pipeline: after the last chunk,
/// [`TableStats::into_plans`] produces exactly the [`ColPlan`]s that
/// [`preprocess`] would fit on the concatenation of every chunk.
#[derive(Debug, Clone)]
pub struct TableStats {
    schema: Schema,
    opts: PreprocessOptions,
    cols: Vec<ColumnStats>,
    rows: usize,
}

impl TableStats {
    /// Creates an empty accumulator, validating the options against the
    /// schema (threshold arity and range, `max_train_card`).
    pub fn new(schema: &Schema, opts: &PreprocessOptions) -> Result<Self> {
        if opts.error_thresholds.len() != schema.len() {
            return Err(DsError::InvalidConfig(
                "one error threshold per column required",
            ));
        }
        if opts.max_train_card < 3 {
            return Err(DsError::InvalidConfig("max_train_card must be >= 3"));
        }
        let mut cols = Vec::with_capacity(schema.len());
        for (f, &error) in schema.fields().iter().zip(&opts.error_thresholds) {
            match f.ty {
                ColumnType::Numeric => {
                    if !(0.0..=1.0).contains(&error) {
                        return Err(DsError::InvalidConfig("error threshold not in [0,1]"));
                    }
                    let track = error == 0.0 && opts.quantize_numerics;
                    cols.push(ColumnStats::Num(NumColStats::new(track)));
                }
                ColumnType::Categorical => cols.push(ColumnStats::Cat(CatColStats::new())),
            }
        }
        Ok(TableStats {
            schema: schema.clone(),
            opts: opts.clone(),
            cols,
            rows: 0,
        })
    }

    /// Assembles an accumulator from already-filled per-column stats (the
    /// CSV probe fills dual-mode stats before the schema is known). Runs
    /// the same option validation as [`TableStats::new`].
    pub(crate) fn from_parts(
        schema: Schema,
        opts: PreprocessOptions,
        cols: Vec<ColumnStats>,
        rows: usize,
    ) -> Result<Self> {
        let mut validated = TableStats::new(&schema, &opts)?;
        if cols.len() != validated.cols.len() {
            return Err(DsError::InvalidConfig("column stats arity mismatch"));
        }
        validated.cols = cols;
        validated.rows = rows;
        Ok(validated)
    }

    /// Folds one chunk of rows into the statistics. Chunks must share the
    /// accumulator's schema and arrive in row order.
    pub fn update(&mut self, chunk: &Table) -> Result<()> {
        if chunk.schema() != &self.schema {
            return Err(DsError::InvalidConfig("chunk schema mismatch"));
        }
        for (col, stats) in chunk.columns().iter().zip(&mut self.cols) {
            match (col, stats) {
                (Column::Num(values), ColumnStats::Num(s)) => {
                    for &v in values {
                        s.push(v);
                    }
                }
                (Column::Cat(values), ColumnStats::Cat(s)) => {
                    for v in values {
                        s.push(v);
                    }
                }
                _ => return Err(DsError::InvalidConfig("chunk schema mismatch")),
            }
        }
        self.rows += chunk.nrows();
        Ok(())
    }

    /// Rows folded in so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Assembles two partial accumulations: `other` must cover the rows
    /// immediately following `self`'s (dictionary codes are assigned in
    /// first-appearance order, so merging is ordered, not commutative).
    pub fn merge(&mut self, other: &TableStats) -> Result<()> {
        if other.schema != self.schema {
            return Err(DsError::InvalidConfig("chunk schema mismatch"));
        }
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            match (dst, src) {
                (ColumnStats::Num(d), ColumnStats::Num(s)) => d.merge(s),
                (ColumnStats::Cat(d), ColumnStats::Cat(s)) => d.merge(s),
                _ => return Err(DsError::InvalidConfig("chunk schema mismatch")),
            }
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Finalizes the accumulated statistics into per-column plans —
    /// identical to what [`preprocess`] fits on the same rows.
    pub fn into_plans(self) -> Result<Vec<ColPlan>> {
        let rows = self.rows;
        let opts = &self.opts;
        let mut plans = Vec::with_capacity(self.cols.len());
        for (stats, &error) in self.cols.into_iter().zip(&opts.error_thresholds) {
            match stats {
                ColumnStats::Num(s) => {
                    let (min, max) = if s.count == 0 {
                        (0.0, 0.0)
                    } else {
                        (s.min, s.max)
                    };
                    if !opts.quantize_numerics {
                        plans.push(ColPlan::NumericRaw { min, max, error });
                        continue;
                    }
                    if s.saw_nan {
                        // Same failure Quantizer::fit reports on NaN input.
                        return Err(DsError::Codec(CodecError::InvalidParameter(
                            "quantizer: NaN input",
                        )));
                    }
                    let quantizer = if error == 0.0 {
                        let distinct = s.distinct.ok_or(DsError::InvalidConfig(
                            "internal: distinct tracking missing for exact quantizer",
                        ))?;
                        let values = distinct.into_iter().map(total_order_value).collect();
                        Quantizer::Exact { values }
                    } else {
                        let range = max - min;
                        let buckets = if range <= 0.0 {
                            1
                        } else {
                            (1.0 / (2.0 * error)).ceil() as u32
                        };
                        Quantizer::Uniform { min, max, buckets }
                    };
                    plans.push(ColPlan::Numeric {
                        quantizer,
                        min,
                        max,
                    });
                }
                ColumnStats::Cat(s) => {
                    let distinct = s.dict.len();
                    let too_wide = rows > 0
                        && distinct > 64
                        && distinct as f64 > opts.high_card_ratio * rows as f64;
                    if s.overflowed || too_wide {
                        plans.push(ColPlan::Fallback);
                    } else if distinct <= 2 {
                        plans.push(ColPlan::Binary { dict: s.dict });
                    } else if distinct <= opts.max_train_card {
                        let class_to_code = (0..distinct as u32).collect();
                        plans.push(ColPlan::Cat {
                            dict: s.dict,
                            model_card: distinct,
                            class_to_code,
                        });
                    } else {
                        // Skew clipping: top (max_train_card - 1) values
                        // keep a class; everything else shares OTHER.
                        let mut by_freq: Vec<(u32, u64)> = s
                            .freq
                            .iter()
                            .enumerate()
                            .map(|(c, &n)| (c as u32, n))
                            .collect();
                        // Sort by (count desc, code asc) for determinism.
                        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                        let keep = opts.max_train_card - 1;
                        let class_to_code: Vec<u32> =
                            by_freq.iter().take(keep).map(|&(c, _)| c).collect();
                        plans.push(ColPlan::Cat {
                            dict: s.dict,
                            model_card: opts.max_train_card,
                            class_to_code,
                        });
                    }
                }
            }
        }
        Ok(plans)
    }
}

/// Runs preprocessing over a table.
///
/// Implemented as the degenerate one-chunk case of the streaming stages:
/// accumulate [`TableStats`], finalize plans, then encode the same rows
/// through [`apply_plans`] — so the in-memory and streaming pipelines fit
/// byte-identical plans by construction. On the fitting table the plans
/// represent every cell, so the encoder's patch list is empty and the
/// resulting [`Preprocessed`] matches what the historical single-pass
/// implementation produced.
pub fn preprocess(table: &Table, opts: &PreprocessOptions) -> Result<Preprocessed> {
    let mut stats = TableStats::new(table.schema(), opts)?;
    stats.update(table)?;
    let plans = stats.into_plans()?;
    let (prep, _patches) = apply_plans(table, &plans)?;
    Ok(prep)
}

/// A cell that the fitted plans cannot represent (unseen categorical
/// value, numeric outside the fitted quantizer's error envelope). Patches
/// are stored verbatim in the archive and applied after reconstruction —
/// the mechanism behind the streaming scenario (§3), where batches arrive
/// after the model was fitted.
#[derive(Debug, Clone, PartialEq)]
pub struct Patch {
    /// Original column index.
    pub col: usize,
    /// Original row index.
    pub row: usize,
    /// Exact replacement value.
    pub value: PatchValue,
}

/// Patch payload.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchValue {
    /// Exact numeric value.
    Num(f64),
    /// Exact string value.
    Str(String),
}

/// Applies *fitted* plans to a new table (same schema), producing model
/// inputs plus patches for every cell the plans cannot represent.
///
/// Unlike [`preprocess`], nothing is re-fitted: dictionaries, quantizers
/// and scaling ranges come from the plans. This is the encoder the
/// streaming scenario pushes to clients.
pub fn apply_plans(table: &Table, plans: &[ColPlan]) -> Result<(Preprocessed, Vec<Patch>)> {
    if plans.len() != table.ncols() {
        return Err(DsError::InvalidConfig("plan arity mismatch"));
    }
    for (i, plan) in plans.iter().enumerate() {
        let col = table.column(i).expect("arity checked");
        let ok = matches!(
            (plan, col),
            (
                ColPlan::Numeric { .. } | ColPlan::NumericRaw { .. },
                Column::Num(_)
            ) | (
                ColPlan::Binary { .. } | ColPlan::Cat { .. } | ColPlan::Fallback,
                Column::Cat(_)
            )
        );
        if !ok {
            return Err(DsError::InvalidConfig("plan/column type mismatch"));
        }
    }
    let n = table.nrows();
    let mut patches = Vec::new();
    let mut true_codes: Vec<Option<Vec<u32>>> = Vec::with_capacity(plans.len());
    let mut model_cols = Vec::new();
    let mut heads = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        if let Some(h) = plan.head() {
            model_cols.push(i);
            heads.push(h);
        }
        match (plan, table.column(i).expect("arity checked")) {
            (ColPlan::Numeric { quantizer, .. }, Column::Num(values)) => {
                let tol = quantizer.max_abs_error() * (1.0 + 1e-9) + 1e-12;
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(r, &v)| {
                        let idx = quantizer.index_of(v);
                        if (quantizer.value_of(idx) - v).abs() > tol {
                            patches.push(Patch {
                                col: i,
                                row: r,
                                value: PatchValue::Num(v),
                            });
                        }
                        idx
                    })
                    .collect();
                true_codes.push(Some(codes));
            }
            (ColPlan::NumericRaw { .. }, Column::Num(_)) => {
                // Raw numeric failures store exact deltas; nothing to patch.
                true_codes.push(None);
            }
            (ColPlan::Binary { dict }, Column::Cat(values)) => {
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(r, v)| match dict.code_of(v) {
                        Some(c) => c,
                        None => {
                            patches.push(Patch {
                                col: i,
                                row: r,
                                value: PatchValue::Str(v.clone()),
                            });
                            0
                        }
                    })
                    .collect();
                true_codes.push(Some(codes));
            }
            (ColPlan::Cat { dict, .. }, Column::Cat(values)) => {
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(r, v)| match dict.code_of(v) {
                        Some(c) => c,
                        None => {
                            patches.push(Patch {
                                col: i,
                                row: r,
                                value: PatchValue::Str(v.clone()),
                            });
                            0
                        }
                    })
                    .collect();
                true_codes.push(Some(codes));
            }
            (ColPlan::Fallback, Column::Cat(_)) => true_codes.push(None),
            _ => unreachable!("type agreement checked above"),
        }
    }

    // Build x / cat_targets exactly as `preprocess` does, from the codes.
    let mut x = ds_nn::Mat::zeros(n, model_cols.len());
    let mut cat_targets: Vec<Vec<u32>> = Vec::new();
    for (slot, &i) in model_cols.iter().enumerate() {
        match (&plans[i], table.column(i).expect("arity checked")) {
            (
                ColPlan::Numeric {
                    quantizer,
                    min,
                    max,
                },
                Column::Num(_),
            ) => {
                let codes = true_codes[i].as_ref().expect("numeric has codes");
                let span = (max - min).max(f64::MIN_POSITIVE);
                for (r, &code) in codes.iter().enumerate() {
                    let mid = quantizer.value_of(code);
                    x.set(r, slot, (((mid - min) / span).clamp(0.0, 1.0)) as f32);
                }
            }
            (ColPlan::NumericRaw { min, max, .. }, Column::Num(values)) => {
                let span = (max - min).max(f64::MIN_POSITIVE);
                for (r, &v) in values.iter().enumerate() {
                    x.set(r, slot, (((v - min) / span).clamp(0.0, 1.0)) as f32);
                }
            }
            (ColPlan::Binary { .. }, Column::Cat(_)) => {
                let codes = true_codes[i].as_ref().expect("binary has codes");
                for (r, &code) in codes.iter().enumerate() {
                    x.set(r, slot, (code.min(1)) as f32);
                }
            }
            (
                ColPlan::Cat {
                    model_card,
                    class_to_code,
                    ..
                },
                Column::Cat(_),
            ) => {
                let codes = true_codes[i].as_ref().expect("cat has codes");
                let denom = (*model_card - 1).max(1) as f32;
                let mut targets = Vec::with_capacity(n);
                for (r, &code) in codes.iter().enumerate() {
                    let class = class_of_code(class_to_code, *model_card, code);
                    targets.push(class);
                    x.set(r, slot, class as f32 / denom);
                }
                cat_targets.push(targets);
            }
            _ => unreachable!(),
        }
    }

    Ok((
        Preprocessed {
            plans: plans.to_vec(),
            model_cols,
            heads,
            x,
            cat_targets,
            true_codes,
        },
        patches,
    ))
}

/// Maps a global dictionary code to its model class under a Cat plan.
pub fn class_of_code(class_to_code: &[u32], model_card: usize, code: u32) -> u32 {
    match class_to_code.iter().position(|&c| c == code) {
        Some(class) => class as u32,
        None => (model_card - 1) as u32, // OTHER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::gen;

    fn opts(ncols: usize, error: f64) -> PreprocessOptions {
        PreprocessOptions {
            error_thresholds: vec![error; ncols],
            high_card_ratio: 0.5,
            max_train_card: 64,
            quantize_numerics: true,
        }
    }

    #[test]
    fn numeric_inputs_scaled_to_unit_interval() {
        let t = gen::monitor_like(200, 1);
        let p = preprocess(&t, &opts(t.ncols(), 0.05)).unwrap();
        assert_eq!(p.x.cols(), 17);
        for &v in p.x.data() {
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
        // All columns are model-visible numerics.
        assert_eq!(p.heads.len(), 17);
        assert!(p.heads.iter().all(|h| matches!(h, Head::Numeric)));
        assert!(p.cat_targets.is_empty());
    }

    #[test]
    fn binary_columns_become_binary_heads() {
        let t = gen::forest_like(150, 2);
        let p = preprocess(&t, &opts(t.ncols(), 0.1)).unwrap();
        let binary_heads = p.heads.iter().filter(|h| matches!(h, Head::Binary)).count();
        // 4 wilderness + 40 soil one-hot columns are binary.
        assert_eq!(binary_heads, 44);
        let cat_heads = p
            .heads
            .iter()
            .filter(|h| matches!(h, Head::Categorical { .. }))
            .count();
        assert_eq!(cat_heads, 1); // cover type
        assert_eq!(p.cat_targets.len(), 1);
    }

    #[test]
    fn high_cardinality_columns_fall_back() {
        let t = gen::criteo_like(400, 3);
        let p = preprocess(&t, &opts(t.ncols(), 0.1)).unwrap();
        let fallbacks = p
            .plans
            .iter()
            .filter(|p| matches!(p, ColPlan::Fallback))
            .count();
        assert_eq!(fallbacks, 2, "the two hash columns must fall back");
        // Fallback columns contribute no head.
        assert_eq!(p.heads.len(), t.ncols() - 2);
    }

    #[test]
    fn skew_clipping_creates_other_class() {
        // One categorical column with 100 distinct skewed values.
        let values: Vec<String> = (0..2000)
            .map(|i| format!("v{}", if i % 3 == 0 { i % 100 } else { i % 5 }))
            .collect();
        let t = ds_table::Table::from_columns(vec![("c".into(), ds_table::Column::Cat(values))])
            .unwrap();
        let mut o = opts(1, 0.0);
        o.max_train_card = 16;
        let p = preprocess(&t, &o).unwrap();
        match &p.plans[0] {
            ColPlan::Cat {
                dict,
                model_card,
                class_to_code,
            } => {
                assert_eq!(*model_card, 16);
                assert_eq!(class_to_code.len(), 15);
                assert!(dict.len() > 16);
                assert!(p.plans[0].has_other_class());
            }
            other => panic!("wrong plan {other:?}"),
        }
        // Targets stay within model_card.
        assert!(p.cat_targets[0].iter().all(|&c| c < 16));
        // The frequent values map to themselves (head classes), and some
        // rows land in OTHER.
        assert!(p.cat_targets[0].contains(&15));
    }

    #[test]
    fn quantization_codes_respect_error_bound() {
        let t = gen::corel_like(300, 5);
        let p = preprocess(&t, &opts(t.ncols(), 0.10)).unwrap();
        for (i, plan) in p.plans.iter().enumerate() {
            if let ColPlan::Numeric { quantizer, .. } = plan {
                let original = t.column(i).unwrap().as_num().unwrap();
                let codes = p.true_codes[i].as_ref().unwrap();
                for (&v, &c) in original.iter().zip(codes) {
                    let rec = quantizer.value_of(c);
                    assert!((rec - v).abs() <= quantizer.max_abs_error() + 1e-12);
                }
            } else {
                panic!("corel is all numeric");
            }
        }
    }

    #[test]
    fn no_quantization_option_keeps_raw_values() {
        let t = gen::monitor_like(100, 7);
        let mut o = opts(t.ncols(), 0.10);
        o.quantize_numerics = false;
        let p = preprocess(&t, &o).unwrap();
        assert!(p
            .plans
            .iter()
            .all(|pl| matches!(pl, ColPlan::NumericRaw { .. })));
        assert!(p.true_codes.iter().all(Option::is_none));
    }

    #[test]
    fn plan_serialization_roundtrip() {
        let t = gen::criteo_like(300, 11);
        let mut o = opts(t.ncols(), 0.05);
        o.max_train_card = 32;
        let p = preprocess(&t, &o).unwrap();
        for plan in &p.plans {
            let mut w = ByteWriter::new();
            plan.write_to(&mut w);
            let bytes = w.into_vec();
            let mut r = ByteReader::new(&bytes);
            let restored = ColPlan::read_from(&mut r).unwrap();
            // Compare via re-serialization (ColPlan has no PartialEq since
            // Quantizer holds floats compared bitwise there).
            let mut w2 = ByteWriter::new();
            restored.write_to(&mut w2);
            assert_eq!(w2.as_slice(), bytes.as_slice());
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let t = gen::corel_like(10, 1);
        assert!(preprocess(
            &t,
            &PreprocessOptions {
                error_thresholds: vec![0.1; 3], // wrong arity
                high_card_ratio: 0.5,
                max_train_card: 64,
                quantize_numerics: true,
            }
        )
        .is_err());
        let mut o = opts(t.ncols(), 0.1);
        o.max_train_card = 2;
        assert!(preprocess(&t, &o).is_err());
        let o = opts(t.ncols(), 1.5);
        assert!(preprocess(&t, &o).is_err());
    }

    #[test]
    fn class_of_code_maps_other() {
        let map = vec![10u32, 20, 30];
        assert_eq!(class_of_code(&map, 4, 20), 1);
        assert_eq!(class_of_code(&map, 4, 99), 3); // OTHER
    }

    fn plan_bytes(plans: &[ColPlan]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for p in plans {
            p.write_to(&mut w);
        }
        w.into_vec()
    }

    #[test]
    fn chunked_stats_fit_identical_plans() {
        // Every column family at once: skewed categoricals, binaries,
        // high-card fallbacks, exact and bucketed numerics.
        for (t, error) in [
            (gen::criteo_like(500, 9), 0.05),
            (gen::census_like(500, 9), 0.0),
            (gen::forest_like(300, 4), 0.1),
        ] {
            let o = opts(t.ncols(), error);
            let whole = preprocess(&t, &o).unwrap();
            for chunk_rows in [1usize, 7, 64, t.nrows() + 1] {
                let mut stats = TableStats::new(t.schema(), &o).unwrap();
                let mut lo = 0;
                while lo < t.nrows() {
                    stats
                        .update(&t.slice_rows(lo..(lo + chunk_rows).min(t.nrows())))
                        .unwrap();
                    lo += chunk_rows;
                }
                assert_eq!(stats.rows(), t.nrows());
                let plans = stats.into_plans().unwrap();
                assert_eq!(
                    plan_bytes(&plans),
                    plan_bytes(&whole.plans),
                    "chunk_rows={chunk_rows}"
                );
            }
        }
    }

    #[test]
    fn stats_merge_is_ordered_concatenation() {
        let t = gen::census_like(400, 13);
        let o = opts(t.ncols(), 0.0);
        let mut whole = TableStats::new(t.schema(), &o).unwrap();
        whole.update(&t).unwrap();

        let mut front = TableStats::new(t.schema(), &o).unwrap();
        front.update(&t.slice_rows(0..150)).unwrap();
        let mut back = TableStats::new(t.schema(), &o).unwrap();
        back.update(&t.slice_rows(150..400)).unwrap();
        front.merge(&back).unwrap();
        assert_eq!(front.rows(), 400);
        assert_eq!(
            plan_bytes(&front.into_plans().unwrap()),
            plan_bytes(&whole.into_plans().unwrap())
        );

        // Schema mismatch refused.
        let other = gen::corel_like(10, 1);
        let o2 = opts(other.ncols(), 0.0);
        let s2 = TableStats::new(other.schema(), &o2).unwrap();
        let mut s1 = TableStats::new(t.schema(), &o).unwrap();
        assert!(s1.merge(&s2).is_err());
        assert!(s1.update(&other).is_err());
    }

    #[test]
    fn dictionary_cap_forces_fallback() {
        let values: Vec<String> = (0..DICT_CAP + 10).map(|i| format!("u{i}")).collect();
        let n = values.len();
        let t = ds_table::Table::from_columns(vec![("c".into(), ds_table::Column::Cat(values))])
            .unwrap();
        // high_card_ratio 2.0 would normally keep this column on the
        // model; the cap overrides it.
        let o = PreprocessOptions {
            error_thresholds: vec![0.0],
            high_card_ratio: 2.0,
            max_train_card: 64,
            quantize_numerics: true,
        };
        let mut stats = TableStats::new(t.schema(), &o).unwrap();
        stats.update(&t).unwrap();
        assert_eq!(stats.rows(), n);
        let plans = stats.into_plans().unwrap();
        assert!(matches!(plans[0], ColPlan::Fallback));
    }

    #[test]
    fn total_order_key_roundtrips_and_sorts() {
        let mut vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            2.5,
            f64::INFINITY,
        ];
        for v in vals {
            assert_eq!(total_order_value(total_order_key(v)).to_bits(), v.to_bits());
        }
        let mut keys: Vec<u64> = vals.iter().map(|&v| total_order_key(v)).collect();
        keys.sort_unstable();
        vals.sort_by(f64::total_cmp);
        let back: Vec<u64> = vals.iter().map(|&v| total_order_key(v)).collect();
        assert_eq!(keys, back);
    }
}
