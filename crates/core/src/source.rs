//! Magic-byte source negotiation: open *anything that holds rows* as a
//! rewindable [`RowSource`].
//!
//! [`open_source`] sniffs the input instead of trusting file extensions:
//!
//! * a v2 sharded container (trailing `DSRG` footer) — decoded shard by
//!   shard per pass, so recompression never holds the whole table;
//! * a v1 monolithic archive (leading `DSQZ` magic) — decompressed once
//!   into an in-memory table source;
//! * a CSV file (printable head, no NUL bytes) — schema inferred with
//!   `read_csv_infer`'s exact rules in one streaming pass;
//! * anything else — a typed [`DsError::Corrupt`], never a guess.
//!
//! Sniff order matters: a v2 container *starts* with its first shard
//! blob, which is itself a v1 archive, so the trailing v2 footer must be
//! probed before the leading v1 magic.
//!
//! [`open_source_reader`] extends the same negotiation to pipes
//! (`dsqz recompress - out.dsqz`): the stream is spooled to a temp file
//! first, because the two-pass stats/encode pipeline must rewind and a
//! pipe cannot. The spool is deleted when the source is dropped.

use crate::pipeline::ShardDecoder;
use crate::{decompress, DsArchive, DsError};
use ds_table::csv::CsvChunks;
use ds_table::stream::{CsvFileSource, RowSource};
use ds_table::{Field, Schema, Table, TableError};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// How many leading bytes the CSV-vs-binary probe examines.
const SNIFF_HEAD: usize = 8192;

/// What the magic-byte probe decided an input is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Plain-text CSV (schema inferred).
    Csv,
    /// Monolithic v1 archive (leading `DSQZ` magic).
    ArchiveV1,
    /// Sharded v2 container (trailing `DSRG` footer).
    ArchiveV2,
}

impl SourceKind {
    /// Human-readable name, as printed by `dsqz recompress`.
    pub fn describe(&self) -> &'static str {
        match self {
            SourceKind::Csv => "csv",
            SourceKind::ArchiveV1 => "dsqz archive (v1 monolithic)",
            SourceKind::ArchiveV2 => "dsqz archive (v2 sharded)",
        }
    }
}

/// A negotiated input: some [`SourceKind`] opened as a rewindable
/// [`RowSource`], plus the temp-file spool keeping a piped input alive.
///
/// `OpenedSource` itself implements [`RowSource`], so it plugs straight
/// into [`crate::compress_stream_to`].
pub struct OpenedSource {
    kind: SourceKind,
    inner: SourceImpl,
    /// Deletes the spool file on drop; `None` for direct file inputs.
    _spool: Option<TempSpool>,
}

enum SourceImpl {
    Csv(CsvFileSource),
    Table(OwnedTableSource),
    Sharded(ArchiveShardSource),
}

impl OpenedSource {
    /// What the probe decided the input was.
    pub fn kind(&self) -> SourceKind {
        self.kind
    }

    fn as_source(&self) -> &dyn RowSource {
        match &self.inner {
            SourceImpl::Csv(s) => s,
            SourceImpl::Table(s) => s,
            SourceImpl::Sharded(s) => s,
        }
    }
}

impl RowSource for OpenedSource {
    fn schema(&self) -> &Schema {
        self.as_source().schema()
    }

    fn chunk_rows(&self) -> usize {
        self.as_source().chunk_rows()
    }

    fn chunks(&self) -> ds_table::Result<Box<dyn Iterator<Item = ds_table::Result<Table>> + '_>> {
        self.as_source().chunks()
    }
}

/// Sniffs `path` and opens it as a [`RowSource`] yielding about
/// `chunk_rows` rows per chunk (archives chunk at their own shard
/// boundaries). See the module docs for the negotiation rules.
pub fn open_source(path: impl AsRef<Path>, chunk_rows: usize) -> crate::Result<OpenedSource> {
    open_path(path.as_ref(), chunk_rows, None)
}

/// [`open_source`] for non-seekable inputs (pipes, `stdin`): spools the
/// whole stream to a temp file so both compressor passes can re-read it,
/// then negotiates exactly as [`open_source`] would. The temp file lives
/// as long as the returned source and is deleted on drop.
pub fn open_source_reader<R: Read>(
    mut reader: R,
    chunk_rows: usize,
) -> crate::Result<OpenedSource> {
    let spool = TempSpool::create()?;
    {
        let file = std::fs::File::create(&spool.path).map_err(io_err)?;
        let mut w = std::io::BufWriter::new(file);
        std::io::copy(&mut reader, &mut w).map_err(io_err)?;
        w.flush().map_err(io_err)?;
    }
    open_path(&spool.path.clone(), chunk_rows, Some(spool))
}

fn open_path(
    path: &Path,
    chunk_rows: usize,
    spool: Option<TempSpool>,
) -> crate::Result<OpenedSource> {
    let chunk_rows = chunk_rows.max(1);
    let kind = sniff_file(path)?;
    let inner = match kind {
        SourceKind::Csv => {
            let schema = infer_csv_schema(path, chunk_rows)?;
            SourceImpl::Csv(CsvFileSource::new(path, schema, chunk_rows))
        }
        SourceKind::ArchiveV1 => {
            // A v1 archive is one undivided blob: decoding it is all-or-
            // nothing, so the source is the decoded table itself.
            let bytes = std::fs::read(path).map_err(io_err)?;
            let table = decompress(&DsArchive::from_bytes(bytes))?;
            SourceImpl::Table(OwnedTableSource { table, chunk_rows })
        }
        SourceKind::ArchiveV2 => {
            let bytes = std::fs::read(path).map_err(io_err)?;
            SourceImpl::Sharded(ArchiveShardSource::open(bytes)?)
        }
    };
    Ok(OpenedSource {
        kind,
        inner,
        _spool: spool,
    })
}

fn io_err(e: std::io::Error) -> DsError {
    DsError::Table(TableError::Io(e.to_string()))
}

/// Decides what `path` holds from its first and last bytes alone.
///
/// The v2 footer is probed **before** the v1 head magic: every v2
/// container begins with a v1 shard blob, so a head-first probe would
/// misread sharded containers as monolithic forever.
fn sniff_file(path: &Path) -> crate::Result<SourceKind> {
    let mut file = std::fs::File::open(path).map_err(io_err)?;
    let len = file.metadata().map_err(io_err)?.len();
    if len == 0 {
        return Err(DsError::Corrupt("empty input"));
    }

    if len >= ds_shard::FOOTER_LEN as u64 {
        use std::io::{Seek, SeekFrom};
        let mut footer = [0u8; ds_shard::FOOTER_LEN];
        file.seek(SeekFrom::End(-(ds_shard::FOOTER_LEN as i64)))
            .map_err(io_err)?;
        file.read_exact(&mut footer).map_err(io_err)?;
        if let Ok(manifest_len) = ds_shard::footer_manifest_len(&footer) {
            let plausible = manifest_len
                .checked_add(ds_shard::FOOTER_LEN)
                .is_some_and(|end| end as u64 <= len);
            if plausible {
                return Ok(SourceKind::ArchiveV2);
            }
        }
        file.seek(SeekFrom::Start(0)).map_err(io_err)?;
    }

    let mut head = vec![0u8; SNIFF_HEAD.min(len as usize)];
    file.read_exact(&mut head).map_err(io_err)?;
    if head.starts_with(crate::archive::MAGIC) {
        return Ok(SourceKind::ArchiveV1);
    }
    // CSV is text: any NUL in the head marks the input as binary garbage.
    if !head.contains(&0) {
        return Ok(SourceKind::Csv);
    }
    Err(DsError::Corrupt(
        "unrecognized input: no dsqz magic and not text",
    ))
}

/// One streaming pass over a CSV file resolving each column's type with
/// `read_csv_infer`'s exact rule: numeric iff the file has rows and every
/// cell parses as a finite f64 after trimming.
fn infer_csv_schema(path: &Path, chunk_rows: usize) -> crate::Result<Schema> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    let mut chunks = CsvChunks::new(BufReader::new(file), chunk_rows).map_err(DsError::Table)?;
    let header: Vec<String> = chunks.header().to_vec();
    if header.iter().any(String::is_empty) {
        return Err(DsError::Table(TableError::Csv {
            line: 1,
            what: "empty column name in header",
        }));
    }
    let mut numeric_failures = vec![0u64; header.len()];
    let mut rows = 0usize;
    while let Some(records) = chunks.next_chunk().map_err(DsError::Table)? {
        for record in &records {
            for (value, failures) in record.iter().zip(numeric_failures.iter_mut()) {
                let numeric = value
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite())
                    .is_some();
                if !numeric {
                    *failures += 1;
                }
            }
        }
        rows += records.len();
    }
    let fields: Vec<Field> = header
        .into_iter()
        .zip(&numeric_failures)
        .map(|(name, &failures)| {
            if rows > 0 && failures == 0 {
                Field::numeric(name)
            } else {
                Field::categorical(name)
            }
        })
        .collect();
    Schema::new(fields).map_err(DsError::Table)
}

/// [`RowSource`] over an owned in-memory table (the decoded v1 archive):
/// chunks are contiguous row slices, identical to
/// [`ds_table::stream::TableSource`] but self-contained.
struct OwnedTableSource {
    table: Table,
    chunk_rows: usize,
}

impl RowSource for OwnedTableSource {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn chunks(&self) -> ds_table::Result<Box<dyn Iterator<Item = ds_table::Result<Table>> + '_>> {
        let n = self.table.nrows();
        let step = self.chunk_rows;
        let n_chunks = n.div_ceil(step);
        Ok(Box::new((0..n_chunks).map(move |i| {
            let lo = i * step;
            Ok(self.table.slice_rows(lo..lo.saturating_add(step)))
        })))
    }
}

/// [`RowSource`] over a v2 sharded container: each pass walks the shard
/// index and decodes one row group at a time, so recompressing an archive
/// holds O(shard) rows — the same bound as streaming CSV ingest. The
/// shared decoder is parsed once at open and reused by every pass.
struct ArchiveShardSource {
    bytes: Vec<u8>,
    decoder: ShardDecoder,
    schema: Schema,
    chunk_rows: usize,
}

impl ArchiveShardSource {
    fn open(bytes: Vec<u8>) -> crate::Result<ArchiveShardSource> {
        let (decoder, schema, chunk_rows) = {
            let reader = ds_shard::ShardReader::open(&bytes)?;
            let decoder = ShardDecoder::from_shared_blob(reader.shared())?;
            // Shard 0 always exists (even empty containers carry one
            // zero-row shard) and fixes the schema shared by all shards.
            let first = decoder.decode_shard(reader.shard_bytes(0)?)?;
            let chunk_rows = reader
                .entries()
                .first()
                .map(|e| e.rows.len())
                .unwrap_or(0)
                .max(1);
            (decoder, first.schema().clone(), chunk_rows)
        };
        Ok(ArchiveShardSource {
            bytes,
            decoder,
            schema,
            chunk_rows,
        })
    }
}

impl RowSource for ArchiveShardSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn chunks(&self) -> ds_table::Result<Box<dyn Iterator<Item = ds_table::Result<Table>> + '_>> {
        // The container re-validated per pass: cheap (footer + manifest),
        // and keeps the borrow local to the iterator.
        let reader = match ds_shard::ShardReader::open(&self.bytes) {
            Ok(r) => r,
            Err(e) => return Err(TableError::Io(e.to_string())),
        };
        let decoder = &self.decoder;
        let n = reader.n_shards();
        let iter = (0..n).filter_map(move |i| {
            let table = reader
                .shard_bytes(i)
                .map_err(DsError::from)
                .and_then(|blob| decoder.decode_shard(blob));
            match table {
                // Zero-row shards (the empty-container marker) are framing,
                // not data: a source with no rows must yield no chunks.
                Ok(t) if t.nrows() == 0 => None,
                Ok(t) => Some(Ok(t)),
                // RowSource speaks TableError; archive decode failures
                // cross the boundary as a stringly Io error (the typed
                // chain/codec validation already ran at open_source time).
                Err(e) => Some(Err(TableError::Io(e.to_string()))),
            }
        });
        Ok(Box::new(iter))
    }
}

/// A temp file deleted on drop. Names are unique per call within the
/// process (atomic counter); collisions across processes are broken by
/// the pid component — no clock needed, which also keeps this module
/// inside the workspace's no-wallclock rule.
struct TempSpool {
    path: PathBuf,
}

impl TempSpool {
    fn create() -> crate::Result<TempSpool> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("dsqz-spool-{}-{seq}.tmp", std::process::id()));
        // create_new: refuse to reuse a leftover path rather than truncate
        // a file some other process is still reading.
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(TempSpool { path })
    }
}

impl Drop for TempSpool {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::csv::write_csv;
    use ds_table::{gen, ColumnType};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ds_core_source_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn quick_cfg() -> crate::DsConfig {
        crate::DsConfig {
            error_threshold: 0.0,
            max_epochs: 2,
            seed: 5,
            ..crate::DsConfig::default()
        }
    }

    #[test]
    fn sniffs_csv_and_infers_schema() {
        let dir = tmp_dir("csv");
        let t = gen::census_like(60, 3);
        let csv = write_csv(&t);
        let path = dir.join("t.csv");
        std::fs::write(&path, &csv).unwrap();
        let src = open_source(&path, 16).expect("opens");
        assert_eq!(src.kind(), SourceKind::Csv);
        // Inference must match read_csv_infer exactly (categorical columns
        // whose values all *look* numeric legitimately come back Numeric).
        let reparsed = ds_table::csv::read_csv_infer(&csv).unwrap();
        assert_eq!(src.schema(), reparsed.schema());
        let parts: Vec<Table> = src
            .chunks()
            .unwrap()
            .collect::<ds_table::Result<_>>()
            .unwrap();
        assert_eq!(Table::concat(&parts).unwrap(), reparsed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sniffs_v1_and_v2_archives() {
        let dir = tmp_dir("arch");
        let t = gen::census_like(80, 11);

        let v1 = crate::compress(&t, &quick_cfg()).unwrap();
        let p1 = dir.join("a.v1");
        std::fs::write(&p1, v1.as_bytes()).unwrap();
        let src = open_source(&p1, 32).expect("opens v1");
        assert_eq!(src.kind(), SourceKind::ArchiveV1);
        let parts: Vec<Table> = src
            .chunks()
            .unwrap()
            .collect::<ds_table::Result<_>>()
            .unwrap();
        assert_eq!(Table::concat(&parts).unwrap(), t);

        let v2 = crate::compress(
            &t,
            &crate::DsConfig {
                shard_rows: 24,
                ..quick_cfg()
            },
        )
        .unwrap();
        let p2 = dir.join("a.v2");
        std::fs::write(&p2, v2.as_bytes()).unwrap();
        let src = open_source(&p2, 32).expect("opens v2");
        assert_eq!(src.kind(), SourceKind::ArchiveV2);
        assert_eq!(src.chunk_rows(), 24); // shards are the natural chunks
        let parts: Vec<Table> = src
            .chunks()
            .unwrap()
            .collect::<ds_table::Result<_>>()
            .unwrap();
        assert_eq!(Table::concat(&parts).unwrap(), t);
        // Rewind: a second pass yields the same rows.
        let again: Vec<Table> = src
            .chunks()
            .unwrap()
            .collect::<ds_table::Result<_>>()
            .unwrap();
        assert_eq!(Table::concat(&again).unwrap(), t);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_and_empty_inputs_are_typed_errors() {
        let dir = tmp_dir("bad");
        let garbage = dir.join("g.bin");
        std::fs::write(&garbage, [0u8, 1, 2, 0, 255, 0, 7]).unwrap();
        assert!(matches!(open_source(&garbage, 8), Err(DsError::Corrupt(_))));

        let empty = dir.join("e.bin");
        std::fs::write(&empty, []).unwrap();
        assert!(matches!(open_source(&empty, 8), Err(DsError::Corrupt(_))));

        assert!(matches!(
            open_source(dir.join("missing.csv"), 8),
            Err(DsError::Table(TableError::Io(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_spool_matches_file_path() {
        let dir = tmp_dir("spool");
        let t = gen::census_like(50, 13);
        let csv = write_csv(&t);
        let path = dir.join("t.csv");
        std::fs::write(&path, &csv).unwrap();

        let from_file = open_source(&path, 16).unwrap();
        let from_pipe = open_source_reader(csv.as_bytes(), 16).unwrap();
        assert_eq!(from_pipe.kind(), SourceKind::Csv);
        assert_eq!(from_file.schema(), from_pipe.schema());

        let spool_path = from_pipe._spool.as_ref().map(|s| s.path.clone()).unwrap();
        assert!(spool_path.exists());

        let a: Vec<Table> = from_file
            .chunks()
            .unwrap()
            .collect::<ds_table::Result<_>>()
            .unwrap();
        let b: Vec<Table> = from_pipe
            .chunks()
            .unwrap()
            .collect::<ds_table::Result<_>>()
            .unwrap();
        assert_eq!(a, b);

        drop(from_pipe);
        assert!(!spool_path.exists(), "spool must be deleted on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_type_columns_resolve_categorical() {
        let dir = tmp_dir("mixed");
        let path = dir.join("m.csv");
        std::fs::write(&path, "a,b\n1,x\n2,3\n").unwrap();
        let src = open_source(&path, 4).unwrap();
        let tys: Vec<ColumnType> = src.schema().fields().iter().map(|f| f.ty).collect();
        assert_eq!(tys, [ColumnType::Numeric, ColumnType::Categorical]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
