//! # ds-itcompress — the ItCompress baseline
//!
//! A reimplementation of ItCompress (Jagadish, Ng, Ooi, Tung — ICDE 2004),
//! the second semantic-compression baseline the DeepSqueeze paper cites
//! (§2.3): an **iterative clustering** compressor in which each tuple is
//! stored as a reference to its cluster's *representative tuple*, a bitmap
//! marking which attributes match the representative, and the outlying
//! values for the attributes that don't.
//!
//! The paper states that "Squish strongly dominates other semantic
//! compression algorithms (e.g., Spartan, ItCompress)"; having ItCompress
//! in the workspace lets the harness verify that ordering instead of
//! assuming it.
//!
//! Numeric attributes match their representative when they fall within the
//! caller's error threshold (the same guaranteed-error-bound contract as
//! the other systems); matching cells reconstruct to the representative's
//! value, so the bound holds by construction.

#![allow(clippy::needless_range_loop)] // index-heavy kernels read clearer with explicit loops

use ds_codec::dict::Dictionary;
use ds_codec::quant::Quantizer;
use ds_codec::{parq, ByteReader, ByteWriter};
use ds_table::{Column, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Errors from ItCompress.
#[derive(Debug)]
pub enum ItError {
    /// Configuration problem.
    InvalidConfig(&'static str),
    /// Corrupt archive.
    Corrupt(&'static str),
    /// Propagated codec failure.
    Codec(ds_codec::CodecError),
    /// Propagated table failure.
    Table(ds_table::TableError),
}

impl std::fmt::Display for ItError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItError::InvalidConfig(w) => write!(f, "invalid config: {w}"),
            ItError::Corrupt(w) => write!(f, "corrupt archive: {w}"),
            ItError::Codec(e) => write!(f, "codec error: {e}"),
            ItError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for ItError {}

impl From<ds_codec::CodecError> for ItError {
    fn from(e: ds_codec::CodecError) -> Self {
        ItError::Codec(e)
    }
}

impl From<ds_table::TableError> for ItError {
    fn from(e: ds_table::TableError) -> Self {
        ItError::Table(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ItError>;

/// Compression parameters.
#[derive(Debug, Clone)]
pub struct ItConfig {
    /// Number of representative tuples.
    pub representatives: usize,
    /// Refinement iterations (assignment → representative update).
    pub iterations: usize,
    /// Relative error bound for numeric columns (fraction of range).
    pub error_threshold: f64,
    /// RNG seed (initial representative selection).
    pub seed: u64,
}

impl Default for ItConfig {
    fn default() -> Self {
        ItConfig {
            representatives: 16,
            iterations: 5,
            error_threshold: 0.0,
            seed: 0,
        }
    }
}

/// A compressed archive.
#[derive(Debug, Clone)]
pub struct ItArchive {
    bytes: Vec<u8>,
}

impl ItArchive {
    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        ItArchive { bytes }
    }
}

/// Discretized working form of the table: every column as u32 codes.
struct Discretized {
    codes: Vec<Vec<u32>>,
    kinds: Vec<ColKind>,
}

enum ColKind {
    Cat(Dictionary),
    Num(Quantizer),
}

impl ColKind {
    fn cardinality(&self) -> usize {
        match self {
            ColKind::Cat(d) => d.len().max(1),
            ColKind::Num(q) => q.cardinality(),
        }
    }
}

fn discretize(table: &Table, error: f64) -> Result<Discretized> {
    let mut codes = Vec::with_capacity(table.ncols());
    let mut kinds = Vec::with_capacity(table.ncols());
    for col in table.columns() {
        match col {
            Column::Cat(values) => {
                let (dict, c) = Dictionary::encode_column(values);
                kinds.push(ColKind::Cat(dict));
                codes.push(c);
            }
            Column::Num(values) => {
                let q = Quantizer::fit(values, error)?;
                codes.push(q.encode_column(values));
                kinds.push(ColKind::Num(q));
            }
        }
    }
    Ok(Discretized { codes, kinds })
}

/// The iterative core: pick representatives, assign rows to the
/// most-matching representative, recompute representatives as per-cluster
/// column modes; repeat.
fn fit_representatives(disc: &Discretized, n: usize, cfg: &ItConfig) -> (Vec<Vec<u32>>, Vec<u32>) {
    let ncols = disc.codes.len();
    let k = cfg.representatives.max(1).min(n.max(1));
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Representatives as code vectors, seeded from random distinct rows.
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(&mut rng);
    let mut reps: Vec<Vec<u32>> = rows[..k]
        .iter()
        .map(|&r| disc.codes.iter().map(|col| col[r]).collect())
        .collect();

    let mut assign = vec![0u32; n];
    for _ in 0..cfg.iterations.max(1) {
        // Assignment: most matching attributes wins (ties → lower index).
        for r in 0..n {
            let mut best = 0usize;
            let mut best_matches = usize::MAX; // sentinel: not set
            for (j, rep) in reps.iter().enumerate() {
                let matches = (0..ncols).filter(|&c| disc.codes[c][r] == rep[c]).count();
                if best_matches == usize::MAX || matches > best_matches {
                    best_matches = matches;
                    best = j;
                }
            }
            assign[r] = best as u32;
        }
        // Update: per-cluster per-column mode.
        let mut changed = false;
        for (j, rep) in reps.iter_mut().enumerate() {
            for c in 0..ncols {
                let mut counts: std::collections::HashMap<u32, u32> = Default::default();
                for r in 0..n {
                    if assign[r] == j as u32 {
                        *counts.entry(disc.codes[c][r]).or_default() += 1;
                    }
                }
                if let Some((&mode, _)) = counts
                    .iter() // ds-lint: allow(determinism-reachability) -- max_by_key over (count, Reverse(value)) is a total order on distinct keys, so the winner is independent of hash iteration order
                    .max_by_key(|&(&v, &cnt)| (cnt, std::cmp::Reverse(v)))
                {
                    if rep[c] != mode {
                        rep[c] = mode;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (reps, assign)
}

/// Compresses a table.
pub fn compress(table: &Table, cfg: &ItConfig) -> Result<ItArchive> {
    if !(0.0..=1.0).contains(&cfg.error_threshold) {
        return Err(ItError::InvalidConfig("error threshold not in [0,1]"));
    }
    if cfg.representatives == 0 {
        return Err(ItError::InvalidConfig("need at least one representative"));
    }
    let n = table.nrows();
    let disc = discretize(table, cfg.error_threshold)?;
    let ncols = table.ncols();

    let (reps, assign) = if n == 0 {
        (Vec::new(), Vec::new())
    } else {
        fit_representatives(&disc, n, cfg)
    };

    // Materialize: per row → rep id, match bitmap, outliers.
    let mut match_bits: Vec<Vec<u32>> = vec![Vec::with_capacity(n); ncols];
    let mut outliers: Vec<Vec<u32>> = vec![Vec::new(); ncols];
    for r in 0..n {
        let rep = &reps[assign[r] as usize];
        for c in 0..ncols {
            let v = disc.codes[c][r];
            if v == rep[c] {
                match_bits[c].push(0);
            } else {
                match_bits[c].push(1);
                outliers[c].push(v);
            }
        }
    }

    let mut w = ByteWriter::new();
    w.write_bytes(b"ITC1");
    w.write_varint(n as u64);
    w.write_varint(ncols as u64);
    for (i, kind) in disc.kinds.iter().enumerate() {
        let field = table.schema().field(i).expect("arity");
        w.write_len_prefixed(field.name.as_bytes());
        match kind {
            ColKind::Cat(dict) => {
                w.write_u8(0);
                dict.write_to(&mut w);
            }
            ColKind::Num(q) => {
                w.write_u8(1);
                q.write_to(&mut w);
            }
        }
    }
    // Representatives.
    w.write_varint(reps.len() as u64);
    for rep in &reps {
        for &v in rep {
            w.write_varint(u64::from(v));
        }
    }
    // Row payloads through the columnar container: rep ids, one bitmap
    // column and one outlier column per attribute.
    let mut cols: Vec<(String, parq::ParqColumn)> =
        vec![("rep".into(), parq::ParqColumn::U32(assign.clone()))];
    for (c, bits) in match_bits.iter().enumerate() {
        cols.push((format!("m{c}"), parq::ParqColumn::U32(bits.clone())));
    }
    let (bitmap_blob, _) = parq::write_table(&cols)?;
    w.write_len_prefixed(&bitmap_blob);
    // Outlier streams are ragged; one container per column.
    for out in &outliers {
        let (blob, _) = parq::write_table(&[("o".into(), parq::ParqColumn::U32(out.clone()))])?;
        w.write_len_prefixed(&blob);
    }
    Ok(ItArchive {
        bytes: w.into_vec(),
    })
}

/// Decompresses an archive (numerics are bucket midpoints within the
/// compression-time error bound; categoricals exact).
pub fn decompress(archive: &ItArchive) -> Result<Table> {
    let mut r = ByteReader::new(&archive.bytes);
    if r.read_bytes(4)? != b"ITC1" {
        return Err(ItError::Corrupt("bad magic"));
    }
    let n = r.read_varint()? as usize;
    let ncols = r.read_varint()? as usize;
    if ncols > 1 << 20 {
        return Err(ItError::Corrupt("implausible column count"));
    }
    let mut names = Vec::with_capacity(ncols);
    let mut kinds = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        names.push(
            std::str::from_utf8(r.read_len_prefixed()?)
                .map_err(|_| ItError::Corrupt("name not utf-8"))?
                .to_owned(),
        );
        kinds.push(match r.read_u8()? {
            0 => ColKind::Cat(Dictionary::read_from(&mut r)?),
            1 => ColKind::Num(Quantizer::read_from(&mut r)?),
            _ => return Err(ItError::Corrupt("bad column kind")),
        });
    }
    let k = r.read_varint()? as usize;
    if k > n.max(1) {
        return Err(ItError::Corrupt("more representatives than rows"));
    }
    let mut reps = Vec::with_capacity(k);
    for _ in 0..k {
        let mut rep = Vec::with_capacity(ncols);
        for kind in &kinds {
            let v = r.read_varint()? as u32;
            if (v as usize) >= kind.cardinality() {
                return Err(ItError::Corrupt("representative code out of range"));
            }
            rep.push(v);
        }
        reps.push(rep);
    }

    let bitmap_blob = r.read_len_prefixed()?;
    let cols = parq::read_table(bitmap_blob)?;
    if cols.len() != ncols + 1 {
        return Err(ItError::Corrupt("bitmap column count mismatch"));
    }
    let assign = match &cols[0].1 {
        parq::ParqColumn::U32(v) if v.len() == n => v.clone(),
        _ => return Err(ItError::Corrupt("rep column malformed")),
    };
    if assign.iter().any(|&a| a as usize >= k.max(1)) && n > 0 {
        return Err(ItError::Corrupt("rep id out of range"));
    }

    let mut outlier_iters: Vec<std::collections::VecDeque<u32>> = Vec::with_capacity(ncols);
    let mut bitmaps: Vec<&Vec<u32>> = Vec::with_capacity(ncols);
    for c in 0..ncols {
        match &cols[c + 1].1 {
            parq::ParqColumn::U32(v) if v.len() == n => bitmaps.push(v),
            _ => return Err(ItError::Corrupt("bitmap malformed")),
        }
    }
    for _ in 0..ncols {
        let blob = r.read_len_prefixed()?;
        let t = parq::read_table(blob)?;
        match t.into_iter().next() {
            Some((_, parq::ParqColumn::U32(v))) => outlier_iters.push(v.into()),
            _ => return Err(ItError::Corrupt("outlier stream malformed")),
        }
    }

    // Reconstruct code columns.
    let mut named = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut codes = Vec::with_capacity(n);
        for r_i in 0..n {
            let v = if bitmaps[c][r_i] == 0 {
                reps[assign[r_i] as usize][c]
            } else {
                outlier_iters[c]
                    .pop_front()
                    .ok_or(ItError::Corrupt("outlier stream exhausted"))?
            };
            codes.push(v);
        }
        let column = match &kinds[c] {
            ColKind::Cat(dict) => Column::Cat(dict.decode_column(&codes)?),
            ColKind::Num(q) => Column::Num(codes.iter().map(|&i| q.value_of(i)).collect()),
        };
        named.push((names[c].clone(), column));
    }
    Ok(Table::from_columns(named)?)
}

/// True when the column types of two tables match (helper for tests).
pub fn schema_types_match(a: &Table, b: &Table) -> bool {
    a.ncols() == b.ncols()
        && a.schema()
            .fields()
            .iter()
            .zip(b.schema().fields())
            .all(|(x, y)| x.ty == y.ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::gen;

    fn check_contract(original: &Table, restored: &Table, error: f64) {
        assert_eq!(original.nrows(), restored.nrows());
        for (a, b) in original.columns().iter().zip(restored.columns()) {
            match (a, b) {
                (Column::Cat(x), Column::Cat(y)) => assert_eq!(x, y),
                (Column::Num(x), Column::Num(y)) => {
                    let min = x.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let bound = error * (max - min) * (1.0 + 1e-7) + 1e-9;
                    for (u, v) in x.iter().zip(y) {
                        assert!((u - v).abs() <= bound);
                    }
                }
                _ => panic!("column type changed"),
            }
        }
    }

    #[test]
    fn lossless_roundtrip_categoricals() {
        let t = gen::census_like(400, 3);
        let archive = compress(&t, &ItConfig::default()).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(t, restored);
    }

    #[test]
    fn lossy_roundtrip_respects_bound() {
        let t = gen::monitor_like(500, 5);
        let cfg = ItConfig {
            error_threshold: 0.10,
            ..Default::default()
        };
        let archive = compress(&t, &cfg).unwrap();
        check_contract(&t, &decompress(&archive).unwrap(), 0.10);
    }

    #[test]
    fn clustered_data_compresses_well() {
        // Rows repeating a handful of patterns: ItCompress's best case.
        let values: Vec<String> = (0..3000).map(|i| format!("p{}", i % 6)).collect();
        let other: Vec<String> = (0..3000).map(|i| format!("q{}", (i % 6) * 7)).collect();
        let third: Vec<String> = (0..3000).map(|i| format!("r{}", (i % 6) + 1)).collect();
        let t = Table::from_columns(vec![
            ("a".into(), Column::Cat(values)),
            ("b".into(), Column::Cat(other)),
            ("c".into(), Column::Cat(third)),
        ])
        .unwrap();
        let cfg = ItConfig {
            representatives: 8,
            ..Default::default()
        };
        let archive = compress(&t, &cfg).unwrap();
        // Six perfectly repeating patterns: rows collapse to rep ids.
        assert!(
            archive.size() * 20 < t.raw_size(),
            "{} vs {}",
            archive.size(),
            t.raw_size()
        );
        assert_eq!(decompress(&archive).unwrap(), t);
    }

    #[test]
    fn more_representatives_reduce_outliers() {
        let t = gen::census_like(1200, 7);
        let size_at = |k: usize| {
            compress(
                &t,
                &ItConfig {
                    representatives: k,
                    iterations: 4,
                    ..Default::default()
                },
            )
            .unwrap()
            .size()
        };
        // Going from 1 to 32 representatives must help on clustered data.
        assert!(size_at(32) < size_at(1));
    }

    #[test]
    fn empty_and_tiny_tables() {
        let t = gen::corel_like(0, 1);
        let archive = compress(
            &t,
            &ItConfig {
                error_threshold: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(decompress(&archive).unwrap().nrows(), 0);

        let t = gen::corel_like(3, 2);
        let archive = compress(
            &t,
            &ItConfig {
                representatives: 10, // more than rows: clamped
                error_threshold: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        check_contract(&t, &decompress(&archive).unwrap(), 0.1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = gen::corel_like(10, 1);
        assert!(compress(
            &t,
            &ItConfig {
                representatives: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(compress(
            &t,
            &ItConfig {
                error_threshold: 7.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn corrupt_archives_error_not_panic() {
        let t = gen::census_like(150, 9);
        let bytes = compress(&t, &ItConfig::default())
            .unwrap()
            .as_bytes()
            .to_vec();
        assert!(decompress(&ItArchive::from_bytes(bytes[1..].to_vec())).is_err());
        for cut in [4, 20, bytes.len() / 2] {
            let _ = decompress(&ItArchive::from_bytes(bytes[..cut].to_vec()));
        }
        for i in (0..bytes.len()).step_by(83) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let _ = decompress(&ItArchive::from_bytes(bad));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = gen::forest_like(300, 4);
        let cfg = ItConfig {
            error_threshold: 0.05,
            ..Default::default()
        };
        let a = compress(&t, &cfg).unwrap();
        let b = compress(&t, &cfg).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}
