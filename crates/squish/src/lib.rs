//! # ds-squish — the Squish baseline
//!
//! A reimplementation of Squish (Gao & Parameswaran, KDD 2016), the
//! "state-of-the-art semantic compressor" DeepSqueeze compares against
//! (§2.3, §7): a **Bayesian network** over the columns captures
//! correlations and functional dependencies, and each attribute value is
//! **arithmetic-coded** under its conditional distribution given its
//! parent. Numeric columns are quantized to the caller's error threshold
//! (lossless when the threshold is 0), exactly like DeepSqueeze's own
//! preprocessing, so the two systems compete under identical error
//! contracts.
//!
//! Structure learning uses the Chow–Liu algorithm: the maximum spanning
//! tree of pairwise mutual information, the classic tractable Bayesian-
//! network learner. Columns whose cardinality is near the row count
//! (primary keys, hash ids) are excluded from the network and stored via
//! the generic columnar path instead — mirroring DeepSqueeze's own
//! high-cardinality fallback so neither system eats the other's
//! pathological case.

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit loops

pub mod bn;

use ds_codec::dict::Dictionary;
use ds_codec::quant::Quantizer;
use ds_codec::rangecoder::{RangeDecoder, RangeEncoder, StaticModel};
use ds_codec::{parq, ByteReader, ByteWriter};
use ds_table::{Column, ColumnType, Table};

/// Errors from Squish compression/decompression.
#[derive(Debug)]
pub enum SquishError {
    /// Configuration problem (with detail).
    InvalidConfig(&'static str),
    /// Corrupt or truncated archive bytes.
    Corrupt(&'static str),
    /// Propagated codec failure.
    Codec(ds_codec::CodecError),
    /// Propagated table failure.
    Table(ds_table::TableError),
}

impl std::fmt::Display for SquishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SquishError::InvalidConfig(w) => write!(f, "invalid config: {w}"),
            SquishError::Corrupt(w) => write!(f, "corrupt archive: {w}"),
            SquishError::Codec(e) => write!(f, "codec error: {e}"),
            SquishError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for SquishError {}

impl From<ds_codec::CodecError> for SquishError {
    fn from(e: ds_codec::CodecError) -> Self {
        SquishError::Codec(e)
    }
}

impl From<ds_table::TableError> for SquishError {
    fn from(e: ds_table::TableError) -> Self {
        SquishError::Table(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SquishError>;

/// Compression parameters.
#[derive(Debug, Clone)]
pub struct SquishConfig {
    /// Relative error bound for numeric columns (fraction of range; 0 =
    /// lossless). Applied uniformly, as in the paper's evaluation.
    pub error_threshold: f64,
    /// Rows sampled for mutual-information estimation (structure learning
    /// cost control; the CPTs always use all rows).
    pub mi_sample: usize,
    /// Columns with `distinct/rows` above this bypass the network.
    pub high_card_ratio: f64,
    /// CPTs larger than this many entries fall back to marginals.
    pub max_cpt_entries: usize,
    /// Seed for the MI sample.
    pub seed: u64,
}

impl Default for SquishConfig {
    fn default() -> Self {
        SquishConfig {
            error_threshold: 0.0,
            mi_sample: 4000,
            high_card_ratio: 0.5,
            max_cpt_entries: 1 << 17,
            seed: 0,
        }
    }
}

/// A self-contained compressed archive.
#[derive(Debug, Clone)]
pub struct SquishArchive {
    bytes: Vec<u8>,
    /// Size of the model portion (tree + CPTs + dicts + quantizers).
    pub model_bytes: usize,
    /// Size of the arithmetic-coded data stream.
    pub data_bytes: usize,
    /// Size of the fallback (high-cardinality) column storage.
    pub fallback_bytes: usize,
}

impl SquishArchive {
    /// Total archive size in bytes — the numerator of the compression
    /// ratio.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Raw archive bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds an archive from bytes (sizes are re-derived on read).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        SquishArchive {
            bytes,
            model_bytes: 0,
            data_bytes: 0,
            fallback_bytes: 0,
        }
    }
}

/// Per-column encoded representation inside the network.
enum ColKind {
    /// Dictionary-coded categorical.
    Cat(Dictionary),
    /// Quantized numeric.
    Num(Quantizer),
}

impl ColKind {
    fn cardinality(&self) -> usize {
        match self {
            ColKind::Cat(d) => d.len().max(1),
            ColKind::Num(q) => q.cardinality(),
        }
    }
}

/// Compresses a table.
pub fn compress(table: &Table, cfg: &SquishConfig) -> Result<SquishArchive> {
    if !(0.0..=1.0).contains(&cfg.error_threshold) {
        return Err(SquishError::InvalidConfig("error threshold not in [0,1]"));
    }
    let n = table.nrows();

    // ---- split columns: network vs high-cardinality fallback -------------
    let mut net_cols: Vec<usize> = Vec::new();
    let mut fallback_cols: Vec<usize> = Vec::new();
    for (i, col) in table.columns().iter().enumerate() {
        let too_wide = n > 0
            && col.ty() == ColumnType::Categorical
            && col.distinct_count() as f64 > cfg.high_card_ratio * n as f64
            && col.distinct_count() > 64;
        if too_wide {
            fallback_cols.push(i);
        } else {
            net_cols.push(i);
        }
    }

    // ---- discretize network columns --------------------------------------
    let mut kinds: Vec<ColKind> = Vec::with_capacity(net_cols.len());
    let mut codes: Vec<Vec<u32>> = Vec::with_capacity(net_cols.len());
    for &i in &net_cols {
        match table.column(i).expect("index from enumerate") {
            Column::Cat(values) => {
                let (dict, c) = Dictionary::encode_column(values);
                kinds.push(ColKind::Cat(dict));
                codes.push(c);
            }
            Column::Num(values) => {
                let q = Quantizer::fit(values, cfg.error_threshold)?;
                codes.push(q.encode_column(values));
                kinds.push(ColKind::Num(q));
            }
        }
    }

    // ---- structure learning (Chow–Liu) ------------------------------------
    let cards: Vec<usize> = kinds.iter().map(ColKind::cardinality).collect();
    let parents = bn::chow_liu(&codes, &cards, cfg.mi_sample, cfg.seed);
    let order = bn::topological_order(&parents);

    // ---- CPTs ---------------------------------------------------------------
    // For column c with parent p: counts[c][u] = histogram of c's values
    // where parent value = u. Oversized CPTs degrade to marginals.
    let mut effective_parents = parents.clone();
    for (c, parent) in parents.iter().enumerate() {
        if let Some(p) = parent {
            if cards[c].saturating_mul(cards[*p]) > cfg.max_cpt_entries {
                effective_parents[c] = None;
            }
        }
    }
    let mut cpts: Vec<Vec<Vec<u64>>> = Vec::with_capacity(codes.len());
    for c in 0..codes.len() {
        let rows_of_parent = effective_parents[c].map(|p| &codes[p]);
        let n_parent_vals = effective_parents[c].map(|p| cards[p]).unwrap_or(1);
        let mut table_c = vec![vec![0u64; cards[c]]; n_parent_vals];
        for r in 0..n {
            let u = rows_of_parent.map(|pc| pc[r] as usize).unwrap_or(0);
            table_c[u][codes[c][r] as usize] += 1;
        }
        cpts.push(table_c);
    }

    // ---- arithmetic-code the data -----------------------------------------
    let models: Vec<Vec<StaticModel>> = cpts
        .iter()
        .map(|t| {
            t.iter()
                .map(|counts| StaticModel::from_counts(counts))
                .collect::<ds_codec::Result<Vec<_>>>()
        })
        .collect::<ds_codec::Result<Vec<_>>>()?;
    let mut enc = RangeEncoder::new();
    for r in 0..n {
        for &c in &order {
            let u = effective_parents[c]
                .map(|p| codes[p][r] as usize)
                .unwrap_or(0);
            models[c][u].encode(&mut enc, codes[c][r] as usize)?;
        }
    }
    let data_stream = if n > 0 && !codes.is_empty() {
        enc.finish()
    } else {
        Vec::new()
    };

    // ---- fallback columns through the generic columnar path ---------------
    let fallback_named: Vec<(String, parq::ParqColumn)> = fallback_cols
        .iter()
        .map(|&i| {
            let name = table.schema().field(i).expect("valid index").name.clone();
            let values = table
                .column(i)
                .expect("valid index")
                .as_cat()
                .expect("fallback columns are categorical")
                .to_vec();
            (name, parq::ParqColumn::Str(values))
        })
        .collect();
    let (fallback_blob, _) = parq::write_table(&fallback_named)?;

    // ---- serialize the archive ---------------------------------------------
    let mut w = ByteWriter::new();
    w.write_bytes(b"SQSH");
    w.write_varint(n as u64);
    w.write_varint(table.ncols() as u64);
    // Column dispositions in schema order: 0 = network index k, 1 = fallback.
    let mut net_rank = vec![usize::MAX; table.ncols()];
    for (k, &i) in net_cols.iter().enumerate() {
        net_rank[i] = k;
    }
    for i in 0..table.ncols() {
        let f = table.schema().field(i).expect("valid index");
        w.write_len_prefixed(f.name.as_bytes());
        w.write_u8(match f.ty {
            ColumnType::Categorical => 0,
            ColumnType::Numeric => 1,
        });
        if net_rank[i] == usize::MAX {
            w.write_u8(1);
        } else {
            w.write_u8(0);
        }
    }

    let model_start = w.len();
    // Per network column: kind payload, parent (+1, 0 = none), CPT counts.
    w.write_varint(net_cols.len() as u64);
    for (k, kind) in kinds.iter().enumerate() {
        match kind {
            ColKind::Cat(dict) => {
                w.write_u8(0);
                dict.write_to(&mut w);
            }
            ColKind::Num(q) => {
                w.write_u8(1);
                q.write_to(&mut w);
            }
        }
        match effective_parents[k] {
            Some(p) => w.write_varint(p as u64 + 1),
            None => w.write_varint(0),
        }
        // CPT: parent-value-major, serialized sparsely — real CPTs are
        // mostly zeros (a child value co-occurs with few parent values),
        // and zero counts are reconstructible, so only nonzero entries are
        // written as (index-delta, count) pairs.
        let t = &cpts[k];
        w.write_varint(t.len() as u64);
        for counts in t {
            let nonzero = counts.iter().filter(|&&c| c > 0).count();
            w.write_varint(nonzero as u64);
            let mut prev = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                if c > 0 {
                    w.write_varint(idx as u64 - prev);
                    w.write_varint(c.min(u64::from(u32::MAX)));
                    prev = idx as u64;
                }
            }
        }
    }
    let model_bytes = w.len() - model_start;

    let data_start = w.len();
    w.write_len_prefixed(&data_stream);
    let data_bytes = w.len() - data_start;

    let fb_start = w.len();
    w.write_len_prefixed(&fallback_blob);
    let fallback_bytes = w.len() - fb_start;

    Ok(SquishArchive {
        bytes: w.into_vec(),
        model_bytes,
        data_bytes,
        fallback_bytes,
    })
}

/// Decompresses an archive back into a table (numeric values are bucket
/// midpoints, within the compression-time error bound).
pub fn decompress(archive: &SquishArchive) -> Result<Table> {
    let mut r = ByteReader::new(&archive.bytes);
    if r.read_bytes(4)? != b"SQSH" {
        return Err(SquishError::Corrupt("bad magic"));
    }
    let n = r.read_varint()? as usize;
    let ncols = r.read_varint()? as usize;
    if n > ds_codec::MAX_DECODE_ELEMS {
        return Err(SquishError::Corrupt("row count exceeds decode limit"));
    }
    if ncols > 1 << 20 {
        return Err(SquishError::Corrupt("implausible column count"));
    }

    struct ColMeta {
        name: String,
        ty: ColumnType,
        fallback: bool,
    }
    let mut metas = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = std::str::from_utf8(r.read_len_prefixed()?)
            .map_err(|_| SquishError::Corrupt("column name not utf-8"))?
            .to_owned();
        let ty = match r.read_u8()? {
            0 => ColumnType::Categorical,
            1 => ColumnType::Numeric,
            _ => return Err(SquishError::Corrupt("bad type tag")),
        };
        let fallback = match r.read_u8()? {
            0 => false,
            1 => true,
            _ => return Err(SquishError::Corrupt("bad disposition tag")),
        };
        metas.push(ColMeta { name, ty, fallback });
    }

    let n_net = r.read_varint()? as usize;
    if n_net > ncols {
        return Err(SquishError::Corrupt("network column count exceeds table"));
    }
    let mut kinds: Vec<ColKind> = Vec::with_capacity(n_net);
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n_net);
    let mut models: Vec<Vec<StaticModel>> = Vec::with_capacity(n_net);
    for _ in 0..n_net {
        let kind = match r.read_u8()? {
            0 => ColKind::Cat(Dictionary::read_from(&mut r)?),
            1 => ColKind::Num(Quantizer::read_from(&mut r)?),
            _ => return Err(SquishError::Corrupt("bad column kind")),
        };
        let parent = match r.read_varint()? {
            0 => None,
            p => {
                let p = (p - 1) as usize;
                if p >= n_net {
                    return Err(SquishError::Corrupt("parent out of range"));
                }
                Some(p)
            }
        };
        let card = kind.cardinality();
        let n_parent_vals = r.read_varint()? as usize;
        if n_parent_vals == 0 || n_parent_vals.saturating_mul(card) > 1 << 26 {
            return Err(SquishError::Corrupt("implausible CPT size"));
        }
        let mut col_models = Vec::with_capacity(n_parent_vals);
        for _ in 0..n_parent_vals {
            let mut counts = vec![0u64; card];
            let nonzero = r.read_varint()? as usize;
            if nonzero > card {
                return Err(SquishError::Corrupt("CPT nonzero count exceeds card"));
            }
            let mut idx = 0u64;
            for j in 0..nonzero {
                let delta = r.read_varint()?;
                idx = if j == 0 { delta } else { idx + delta };
                let slot = usize::try_from(idx)
                    .ok()
                    .filter(|&i| i < card)
                    .ok_or(SquishError::Corrupt("CPT index out of range"))?;
                counts[slot] = r.read_varint()?;
            }
            col_models.push(StaticModel::from_counts(&counts)?);
        }
        kinds.push(kind);
        parents.push(parent);
        models.push(col_models);
    }

    let parents_valid = parents
        .iter()
        .enumerate()
        .all(|(c, p)| p.is_none_or(|p| p != c));
    if !parents_valid {
        return Err(SquishError::Corrupt("self-parent"));
    }
    let order = bn::topological_order(&parents);
    if order.len() != n_net {
        return Err(SquishError::Corrupt("parent graph is not a tree"));
    }

    let data_stream = r.read_len_prefixed()?;
    let mut codes: Vec<Vec<u32>> = (0..n_net).map(|_| Vec::with_capacity(n)).collect();
    if n > 0 && n_net > 0 {
        let mut dec = RangeDecoder::new(data_stream)?;
        for _ in 0..n {
            for &c in &order {
                let u = parents[c]
                    .map(|p| *codes[p].last().expect("parent decoded first") as usize)
                    .unwrap_or(0);
                let model = models[c]
                    .get(u)
                    .ok_or(SquishError::Corrupt("parent value out of CPT range"))?;
                let v = model.decode(&mut dec)?;
                codes[c].push(v as u32);
            }
        }
    }

    let fallback_blob = r.read_len_prefixed()?;
    let fallback_cols = parq::read_table(fallback_blob)?;
    let mut fallback_iter = fallback_cols.into_iter();

    // Reassemble in schema order.
    let mut net_iter = kinds.iter().zip(codes);
    let mut named: Vec<(String, Column)> = Vec::with_capacity(ncols);
    for meta in metas {
        if meta.fallback {
            let (name, col) = fallback_iter
                .next()
                .ok_or(SquishError::Corrupt("missing fallback column"))?;
            if name != meta.name {
                return Err(SquishError::Corrupt("fallback column order mismatch"));
            }
            match col {
                parq::ParqColumn::Str(values) => {
                    named.push((meta.name, Column::Cat(values)));
                }
                _ => return Err(SquishError::Corrupt("fallback column wrong type")),
            }
        } else {
            let (kind, code_col) = net_iter
                .next()
                .ok_or(SquishError::Corrupt("missing network column"))?;
            let column = match (kind, meta.ty) {
                (ColKind::Cat(dict), ColumnType::Categorical) => {
                    Column::Cat(dict.decode_column(&code_col)?)
                }
                (ColKind::Num(q), ColumnType::Numeric) => {
                    Column::Num(code_col.iter().map(|&i| q.value_of(i)).collect())
                }
                _ => return Err(SquishError::Corrupt("column kind/type mismatch")),
            };
            named.push((meta.name, column));
        }
    }

    Ok(Table::from_columns(named)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_table::gen;

    fn assert_within_error(original: &Table, restored: &Table, error: f64) {
        assert_eq!(original.nrows(), restored.nrows());
        assert_eq!(original.schema(), restored.schema());
        for (a, b) in original.columns().iter().zip(restored.columns()) {
            match (a, b) {
                (Column::Cat(x), Column::Cat(y)) => assert_eq!(x, y),
                (Column::Num(x), Column::Num(y)) => {
                    let min = x.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    // Allow float-epsilon slack: the bucket-midpoint guarantee is
                    // exact in real arithmetic, off by ulps in f64.
                    let bound = error * (max - min) * (1.0 + 1e-7) + 1e-9;
                    for (u, v) in x.iter().zip(y) {
                        assert!(
                            (u - v).abs() <= bound,
                            "numeric error {} exceeds bound {bound}",
                            (u - v).abs()
                        );
                    }
                }
                _ => panic!("column type changed"),
            }
        }
    }

    #[test]
    fn lossless_roundtrip_categorical_table() {
        let t = gen::census_like(500, 3);
        let archive = compress(&t, &SquishConfig::default()).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(t, restored);
    }

    #[test]
    fn lossy_roundtrip_respects_error_bound() {
        for error in [0.01, 0.10] {
            let t = gen::monitor_like(800, 5);
            let cfg = SquishConfig {
                error_threshold: error,
                ..Default::default()
            };
            let archive = compress(&t, &cfg).unwrap();
            let restored = decompress(&archive).unwrap();
            assert_within_error(&t, &restored, error);
        }
    }

    #[test]
    fn exploits_functional_dependencies() {
        // census_like plants state→division→region FDs; Squish's BN should
        // compress far below the independent-columns entropy.
        let t = gen::census_like(3000, 7);
        let archive = compress(&t, &SquishConfig::default()).unwrap();
        let ratio = archive.size() as f64 / t.raw_size() as f64;
        assert!(ratio < 0.35, "ratio {ratio} too poor for FD-rich data");
        assert_eq!(decompress(&archive).unwrap(), t);
    }

    #[test]
    fn larger_error_thresholds_compress_better() {
        let t = gen::monitor_like(1500, 11);
        let size_at = |e: f64| {
            let cfg = SquishConfig {
                error_threshold: e,
                ..Default::default()
            };
            compress(&t, &cfg).unwrap().size()
        };
        let fine = size_at(0.005);
        let coarse = size_at(0.10);
        assert!(
            coarse < fine,
            "10% threshold ({coarse}) should beat 0.5% ({fine})"
        );
    }

    #[test]
    fn high_cardinality_columns_take_fallback_path() {
        let t = gen::criteo_like(600, 2);
        let archive = compress(
            &t,
            &SquishConfig {
                error_threshold: 0.10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            archive.fallback_bytes > 0,
            "criteo hash columns must go through the fallback"
        );
        let restored = decompress(&archive).unwrap();
        assert_within_error(&t, &restored, 0.10);
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = gen::corel_like(0, 1);
        let archive = compress(&t, &SquishConfig::default()).unwrap();
        let restored = decompress(&archive).unwrap();
        assert_eq!(restored.nrows(), 0);
        assert_eq!(restored.schema(), t.schema());
    }

    #[test]
    fn invalid_config_rejected() {
        let t = gen::corel_like(10, 1);
        let cfg = SquishConfig {
            error_threshold: 2.0,
            ..Default::default()
        };
        assert!(compress(&t, &cfg).is_err());
    }

    #[test]
    fn corrupt_archives_error_not_panic() {
        let t = gen::census_like(100, 9);
        let archive = compress(&t, &SquishConfig::default()).unwrap();
        let bytes = archive.as_bytes().to_vec();
        assert!(decompress(&SquishArchive::from_bytes(bytes[1..].to_vec())).is_err());
        for cut in [4, 20, bytes.len() / 2] {
            let _ = decompress(&SquishArchive::from_bytes(bytes[..cut].to_vec()));
        }
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let _ = decompress(&SquishArchive::from_bytes(bad)); // no panic
        }
    }

    #[test]
    fn size_components_sum_to_total_modulo_header() {
        let t = gen::forest_like(400, 4);
        let cfg = SquishConfig {
            error_threshold: 0.05,
            ..Default::default()
        };
        let a = compress(&t, &cfg).unwrap();
        let parts = a.model_bytes + a.data_bytes + a.fallback_bytes;
        assert!(a.size() >= parts);
        assert!(a.size() - parts < 4096, "header overhead too large");
    }
}
