//! Bayesian-network structure learning: the Chow–Liu algorithm.
//!
//! Chow–Liu finds the tree-shaped Bayesian network maximizing total
//! mutual information — the classic tractable structure learner, and the
//! natural reading of Squish's "Bayesian network … efficiently described"
//! requirement (§2.3 of the DeepSqueeze paper). Mutual information is
//! estimated on a row sample; the tree is extracted with Prim's algorithm.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Estimates pairwise mutual information and returns, for every column,
/// its parent in the maximum-spanning-tree Bayesian network (root(s) have
/// `None`).
///
/// * `codes` — dense discretized columns (dictionary codes / bucket ids).
/// * `cards` — per-column alphabet sizes.
/// * `mi_sample` — maximum rows used for the MI estimate.
pub fn chow_liu(
    codes: &[Vec<u32>],
    cards: &[usize],
    mi_sample: usize,
    seed: u64,
) -> Vec<Option<usize>> {
    let k = codes.len();
    if k <= 1 {
        return vec![None; k];
    }
    let n = codes[0].len();
    if n == 0 {
        return vec![None; k];
    }

    // Sample row indexes once for every pair.
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<usize> = if n <= mi_sample {
        (0..n).collect()
    } else {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        idx.truncate(mi_sample);
        idx
    };
    let m = sample.len() as f64;

    // Marginal histograms.
    let marginals: Vec<HashMap<u32, f64>> = codes
        .iter()
        .map(|col| {
            let mut h: HashMap<u32, f64> = HashMap::new();
            for &r in &sample {
                *h.entry(col[r]).or_default() += 1.0;
            }
            h
        })
        .collect();

    // Pairwise MI.
    let mut mi = vec![vec![0.0f64; k]; k];
    for a in 0..k {
        for b in (a + 1)..k {
            // Skip pairs whose joint domain is so large the estimate is
            // meaningless at this sample size.
            if cards[a].saturating_mul(cards[b]) > 1 << 22 {
                continue;
            }
            let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
            for &r in &sample {
                *joint.entry((codes[a][r], codes[b][r])).or_default() += 1.0;
            }
            // Sum in sorted key order: HashMap iteration order would make
            // the floating-point sum (and thus MST tie-breaks) run-to-run
            // nondeterministic.
            // ds-lint: allow(deterministic-iteration) -- collected entries are fully sorted on the next statement before the float accumulation
            // ds-lint: allow(determinism-reachability) -- same justification: the sort on the next statement removes the hash-order dependence before any float accumulation
            let mut entries: Vec<(&(u32, u32), &f64)> = joint.iter().collect();
            entries.sort_by_key(|(k, _)| **k);
            let mut v = 0.0;
            for (&(x, y), &cxy) in entries {
                let px = marginals[a][&x] / m;
                let py = marginals[b][&y] / m;
                let pxy = cxy / m;
                v += pxy * (pxy / (px * py)).ln();
            }
            mi[a][b] = v.max(0.0);
            mi[b][a] = mi[a][b];
        }
    }

    // Prim's algorithm for the maximum spanning tree, rooted at the column
    // with the largest entropy proxy (most distinct values in sample).
    let root = (0..k).max_by_key(|&c| marginals[c].len()).expect("k >= 2");
    let mut in_tree = vec![false; k];
    let mut parent = vec![None; k];
    let mut best_gain = vec![f64::NEG_INFINITY; k];
    let mut best_link = vec![usize::MAX; k];
    in_tree[root] = true;
    for c in 0..k {
        if c != root {
            best_gain[c] = mi[root][c];
            best_link[c] = root;
        }
    }
    for _ in 1..k {
        let next = (0..k)
            .filter(|&c| !in_tree[c])
            .max_by(|&a, &b| best_gain[a].total_cmp(&best_gain[b]))
            .expect("tree incomplete");
        in_tree[next] = true;
        // Attach only when the link carries information; otherwise the
        // column is (near) independent and a marginal model is cheaper.
        if best_gain[next] > 1e-4 {
            parent[next] = Some(best_link[next]);
        }
        for c in 0..k {
            if !in_tree[c] && mi[next][c] > best_gain[c] {
                best_gain[c] = mi[next][c];
                best_link[c] = next;
            }
        }
    }
    parent
}

/// Orders columns parents-first. Returns fewer than `parents.len()`
/// entries when the graph contains a cycle (i.e., it is corrupt).
pub fn topological_order(parents: &[Option<usize>]) -> Vec<usize> {
    let k = parents.len();
    let mut order = Vec::with_capacity(k);
    let mut done = vec![false; k];
    let mut progress = true;
    while order.len() < k && progress {
        progress = false;
        for c in 0..k {
            if done[c] {
                continue;
            }
            let ready = match parents[c] {
                None => true,
                Some(p) => p < k && done[p],
            };
            if ready {
                done[c] = true;
                order.push(c);
                progress = true;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Column 1 is a deterministic function of column 0; column 2 is
    /// independent. Chow–Liu must link 0↔1 and leave 2 unattached (or
    /// attached with negligible weight).
    #[test]
    fn links_dependent_columns() {
        let n = 2000;
        let c0: Vec<u32> = (0..n).map(|i| (i % 7) as u32).collect();
        let c1: Vec<u32> = c0.iter().map(|&v| (v * 3 + 1) % 7).collect();
        let c2: Vec<u32> = (0..n)
            .map(|i| ((i * 2654435761usize) >> 16) as u32 % 5)
            .collect();
        let codes = vec![c0, c1, c2];
        let parents = chow_liu(&codes, &[7, 7, 5], 2000, 1);
        // Exactly one of {0,1} is the other's parent.
        let linked = matches!((parents[0], parents[1]), (Some(1), None) | (None, Some(0)));
        assert!(linked, "0↔1 must be linked: {parents:?}");
        // Independent column: no parent, or attached but harmless — verify
        // it is not the chosen parent of the dependent pair.
        assert_ne!(parents[0], Some(2));
        assert_ne!(parents[1], Some(2));
    }

    #[test]
    fn chain_structure_recovered() {
        // c0 → c1 → c2 (noisy channel at each hop): MST must be the chain.
        let n = 4000;
        let c0: Vec<u32> = (0..n).map(|i| (i % 8) as u32).collect();
        let c1: Vec<u32> = c0
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 11 == 0 { (v + 1) % 8 } else { v })
            .collect();
        let c2: Vec<u32> = c1
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 13 == 0 { (v + 2) % 8 } else { v })
            .collect();
        let parents = chow_liu(&[c0, c1, c2], &[8, 8, 8], 4000, 2);
        let order = topological_order(&parents);
        assert_eq!(order.len(), 3);
        // Every column except the root has a parent in a chain this strong.
        let with_parent = parents.iter().filter(|p| p.is_some()).count();
        assert_eq!(with_parent, 2, "{parents:?}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(chow_liu(&[], &[], 100, 0), Vec::<Option<usize>>::new());
        let single = chow_liu(&[vec![1, 2, 3]], &[4], 100, 0);
        assert_eq!(single, vec![None]);
        let empty_rows = chow_liu(&[vec![], vec![]], &[2, 2], 100, 0);
        assert_eq!(empty_rows, vec![None, None]);
    }

    #[test]
    fn topological_order_parents_first() {
        let parents = vec![Some(2), Some(0), None, Some(1)];
        let order = topological_order(&parents);
        assert_eq!(order.len(), 4);
        let pos = |c: usize| order.iter().position(|&x| x == c).unwrap();
        assert!(pos(2) < pos(0));
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(3));
    }

    #[test]
    fn cycle_detected_by_short_order() {
        let parents = vec![Some(1), Some(0)];
        assert!(topological_order(&parents).len() < 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 1000;
        let codes: Vec<Vec<u32>> = (0..5)
            .map(|c| (0..n).map(|i| ((i * (c + 3)) % 6) as u32).collect())
            .collect();
        let a = chow_liu(&codes, &[6; 5], 500, 9);
        let b = chow_liu(&codes, &[6; 5], 500, 9);
        assert_eq!(a, b);
    }
}
