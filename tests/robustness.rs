//! Robustness regressions: decode-limit enforcement (allocation-abort
//! class of bugs), weight-truncation consistency, and inspect/decompress
//! agreement.

use ds_core::{compress, decompress, inspect, DsArchive, DsConfig};
use ds_table::gen::Dataset;

/// A corrupt RLE stream claiming 2^60 elements must error, not abort the
/// process (regression for the allocation-abort found by proptests).
#[test]
fn absurd_rle_claims_are_rejected() {
    use ds_codec::{rle, ByteWriter};
    let mut w = ByteWriter::new();
    w.write_varint(1u64 << 60); // claimed element count
    w.write_varint(7); // value
    w.write_varint(1u64 << 60); // one gigantic run
    let err = rle::decode(w.as_slice()).unwrap_err();
    assert!(matches!(err, ds_codec::CodecError::Corrupt(_)));
}

#[test]
fn absurd_gzlike_lengths_are_rejected_cheaply() {
    use ds_codec::{gzlike, ByteWriter};
    // Header claiming an enormous raw length followed by garbage: must
    // return an error without attempting the allocation.
    let mut w = ByteWriter::new();
    w.write_varint(1u64 << 62);
    w.write_bytes(&[0u8; 64]);
    assert!(gzlike::decompress(w.as_slice()).is_err());
}

/// bf16 weight truncation must leave compressor and decompressor
/// bit-identical: decompressing must reproduce exactly what the
/// materializer predicted (no drift in failure patching).
#[test]
fn weight_truncation_is_roundtrip_consistent() {
    let t = Dataset::Monitor.generate(600, 91);
    for bits in [0u32, 8, 16] {
        let cfg = DsConfig {
            error_threshold: 0.10,
            max_epochs: 6,
            weight_truncate_bits: bits,
            ..Default::default()
        };
        let archive = compress(&t, &cfg).expect("compresses");
        let restored = decompress(&archive).expect("decodes");
        // The error contract must hold regardless of truncation level.
        for (a, b) in t.columns().iter().zip(restored.columns()) {
            let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
            let min = x.iter().copied().fold(f64::INFINITY, f64::min);
            let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let bound = 0.10 * (max - min) * (1.0 + 1e-7) + 1e-9;
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() <= bound, "bits={bits}");
            }
        }
    }
}

#[test]
fn truncation_shrinks_the_decoder() {
    let t = Dataset::Census.generate(800, 93);
    let size_with = |bits: u32| {
        compress(
            &t,
            &DsConfig {
                max_epochs: 4,
                weight_truncate_bits: bits,
                ..Default::default()
            },
        )
        .expect("compresses")
        .breakdown()
        .decoder
    };
    let full = size_with(0);
    let bf16 = size_with(16);
    assert!(
        bf16 * 3 < full * 2,
        "bf16 decoder {bf16} should be well under f32 decoder {full}"
    );
}

#[test]
fn inspect_agrees_with_decompression_on_every_dataset() {
    for d in Dataset::ALL {
        let error = if d.supports_lossy() { 0.05 } else { 0.0 };
        let t = d.generate(250, 97);
        let cfg = DsConfig {
            error_threshold: error,
            max_epochs: 3,
            n_experts: 2,
            ..Default::default()
        };
        let archive = compress(&t, &cfg).expect("compresses");
        let info = inspect(&archive).expect("inspects");
        let restored = decompress(&archive).expect("decodes");
        assert_eq!(info.nrows, restored.nrows(), "{}", d.name());
        assert_eq!(info.columns.len(), restored.ncols(), "{}", d.name());
        for ((name, _), field) in info.columns.iter().zip(restored.schema().fields()) {
            assert_eq!(name, &field.name);
        }
    }
}

#[test]
fn archives_reject_version_skew() {
    let t = Dataset::Corel.generate(100, 99);
    let cfg = DsConfig {
        error_threshold: 0.1,
        max_epochs: 2,
        ..Default::default()
    };
    let mut bytes = compress(&t, &cfg).expect("compresses").as_bytes().to_vec();
    bytes[4] = 99; // version byte
    assert!(decompress(&DsArchive::from_bytes(bytes.clone())).is_err());
    assert!(inspect(&DsArchive::from_bytes(bytes)).is_err());
}
