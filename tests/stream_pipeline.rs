//! Streaming-ingest integration tests (§3e): the chunked CSV reader must
//! reassemble exactly what the whole-file parser produces — including
//! quoted fields spanning chunk and refill boundaries — and the staged
//! streaming compressor must emit byte-identical containers to the
//! in-memory path, for any chunk size and any thread count.

use ds_core::{compress_csv_stream_to, compress_sharded_to, DsConfig};
use ds_table::csv::{read_csv, read_csv_infer, write_csv, CsvChunks};
use ds_table::gen;
use ds_table::stream::rows_to_table;
use ds_table::{Column, Table};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds_stream_pl_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Strategy: a table whose categorical cells draw from an alphabet that
/// forces CSV escaping — commas, double quotes, and embedded newlines —
/// so quoted fields routinely span chunk_rows and refill boundaries.
fn arb_nasty_table() -> impl Strategy<Value = Table> {
    let ncols = 1usize..=4;
    let nrows = 1usize..=40;
    (ncols, nrows).prop_flat_map(|(ncols, nrows)| {
        // Cells are never fully empty: a single-column row whose only
        // cell is "" renders as a bare empty line, which CSV cannot
        // distinguish from a trailing newline (a documented quirk shared
        // with the whole-file parser).
        let cell = prop::collection::vec(0usize..7, 1..6).prop_map(|picks| {
            picks
                .into_iter()
                .map(|p| ["a", "b", ",", "\"", "\n", "x y", "7"][p])
                .collect::<String>()
        });
        let col = prop_oneof![
            prop::collection::vec(cell, nrows..=nrows).prop_map(Column::Cat),
            prop::collection::vec(-100.0f64..100.0, nrows..=nrows)
                .prop_map(|v| Column::Num(v.into_iter().map(|x| x.round()).collect())),
        ];
        prop::collection::vec(col, ncols..=ncols).prop_map(|cols| {
            let named = cols
                .into_iter()
                .enumerate()
                .map(|(i, c)| (format!("col{i}"), c))
                .collect();
            Table::from_columns(named).expect("equal lengths by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CsvChunks reassembly ≡ read_csv for chunk sizes {1, 7, 64, rows+1},
    /// with a deliberately tiny refill buffer so quoted fields (including
    /// embedded newlines) split across both chunk and refill boundaries.
    #[test]
    fn chunked_reader_reassembles_any_escapable_table(t in arb_nasty_table()) {
        let text = write_csv(&t);
        let whole = read_csv(&text, t.schema().clone()).expect("own CSV parses");
        prop_assert_eq!(&whole, &t);
        for chunk_rows in [1, 7, 64, t.nrows() + 1] {
            let mut chunks = CsvChunks::with_capacity(text.as_bytes(), chunk_rows, 3)
                .expect("header parses");
            let mut parts = Vec::new();
            let mut base = 0usize;
            while let Some(rows) = chunks.next_chunk().expect("chunk parses") {
                prop_assert!(rows.len() <= chunk_rows);
                let n = rows.len();
                parts.push(rows_to_table(t.schema(), rows, base).expect("typed chunk"));
                base += n;
            }
            prop_assert_eq!(base, t.nrows());
            let reassembled = Table::concat(&parts).expect("same schema");
            prop_assert_eq!(&reassembled, &t);
        }
    }
}

/// Streaming CSV compression is byte-identical to loading the file and
/// running the in-memory sharded path — across chunk sizes, with and
/// without reservoir sampling.
#[test]
fn streaming_csv_compress_matches_in_memory_bytes() {
    let dir = tmpdir("identity");
    let text = write_csv(&gen::census_like(300, 17));
    let path = dir.join("c.csv");
    std::fs::write(&path, &text).unwrap();
    // The in-memory reference is what the CLI would load: the re-parsed
    // CSV (inference may type digit-string categoricals as numeric).
    let t = read_csv_infer(&text).unwrap();

    for sample_frac in [1.0, 0.3] {
        let cfg = DsConfig {
            error_threshold: 0.05,
            max_epochs: 4,
            shard_rows: 64,
            seed: 23,
            sample_frac,
            ..DsConfig::default()
        };
        let reference = compress_sharded_to(&t, &cfg, Vec::new()).unwrap();
        for chunk_rows in [7, 64, 100, 301] {
            let (out, info) = compress_csv_stream_to(&path, &cfg, chunk_rows, Vec::new()).unwrap();
            assert_eq!(info.rows, t.nrows());
            assert_eq!(&info.schema, t.schema(), "schema inference must agree");
            assert_eq!(
                out.sink, reference.sink,
                "chunk_rows={chunk_rows} sample_frac={sample_frac}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The determinism contract: for a fixed seed, streaming output does not
/// depend on the thread count.
#[test]
fn streaming_bytes_are_thread_count_invariant() {
    let dir = tmpdir("threads");
    let t = gen::monitor_like(250, 5);
    let path = dir.join("m.csv");
    std::fs::write(&path, write_csv(&t)).unwrap();

    let cfg = DsConfig {
        error_threshold: 0.1,
        max_epochs: 4,
        shard_rows: 50,
        seed: 7,
        sample_frac: 0.5,
        ..DsConfig::default()
    };
    let outputs: Vec<Vec<u8>> = [1usize, 2, 8]
        .into_iter()
        .map(|limit| {
            ds_exec::with_thread_limit(limit, || {
                compress_csv_stream_to(&path, &cfg, 33, Vec::new())
                    .unwrap()
                    .0
                    .sink
            })
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 threads");
    let _ = std::fs::remove_dir_all(&dir);
}
