//! Serve-layer trace determinism: with timing disabled, a fixed request
//! stream against a fresh [`ds_serve::Archive`] produces a byte-identical
//! ds-obs report no matter how many pool threads decode the shards —
//! including the cache hit/miss/eviction counters, because lookups and
//! inserts happen in ascending shard order per request.
//!
//! One test function on purpose: the recorder is process-global, so this
//! file must not run other recorder-touching tests concurrently.

use ds_core::{compress, DsConfig};
use ds_serve::Archive;
use ds_table::gen::Dataset;

#[test]
fn timing_free_serve_trace_is_identical_across_thread_limits() {
    let t = Dataset::Monitor.generate(260, 31);
    let cfg = DsConfig {
        error_threshold: 0.05,
        code_size: 2,
        max_epochs: 3,
        shard_rows: 40,
        ..Default::default()
    };
    let bytes = compress(&t, &cfg).expect("compresses").as_bytes().to_vec();
    // Budget for ~2 decoded shards (7 in the archive): the request
    // stream below forces evictions, so their counters are part of the
    // determinism contract being checked.
    let shard_budget = {
        let probe = Archive::open(bytes.clone()).expect("opens");
        probe.read_rows(0..40).expect("probe decode").mem_size() * 5 / 2
    };
    let requests =
        b"GET 0..100\nGET 60..140\nSTAT\nGET 0..40\nGET 200..260\nGET 0..260\nnonsense\nQUIT\n";

    let run = |limit: usize| {
        ds_exec::with_thread_limit(limit, || {
            ds_obs::enable(false);
            let archive = Archive::with_cache(bytes.clone(), shard_budget).expect("opens");
            let mut out: Vec<u8> = Vec::new();
            let summary =
                ds_serve::serve_connection(&archive, &requests[..], &mut out).expect("serves");
            assert_eq!(summary.requests, 8);
            let mut sink: Vec<u8> = Vec::new();
            archive
                .stream_csv(0..archive.total_rows(), &mut sink, true)
                .expect("streams");
            ds_obs::sink::to_jsonl(&ds_obs::drain())
        })
    };

    let t1 = run(1);
    let t2 = run(2);
    let t8 = run(8);
    for needle in [
        "\"serve.request\"",
        "\"serve.read_rows\"",
        "\"serve.decode_shard\"",
        "\"serve.stream\"",
        "\"serve.cache_hit\"",
        "\"serve.cache_miss\"",
        "\"serve.cache_evicted_bytes\"",
        "\"serve.shard_bytes_read\"",
    ] {
        assert!(t1.contains(needle), "trace missing {needle}:\n{t1}");
    }
    assert_eq!(t1, t2, "serve trace differs between 1 and 2 threads");
    assert_eq!(t1, t8, "serve trace differs between 1 and 8 threads");
}
