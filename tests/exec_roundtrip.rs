//! The execution layer's determinism contract, end to end: the archive a
//! compressor produces must not depend on how many threads it ran with,
//! and decompression must recover the identical table either way. This is
//! what makes the parallel kernels safe for a *lossless* format — a file
//! written on a 32-core server decodes bit-for-bit on a laptop.

use ds_core::{compress, decompress, DsConfig};
use ds_table::gen::Dataset;
use ds_table::Column;

fn cfg(error: f64) -> DsConfig {
    DsConfig {
        error_threshold: error,
        code_size: 2,
        n_experts: 2,
        max_epochs: 5,
        ..Default::default()
    }
}

fn tables_identical(a: &ds_table::Table, b: &ds_table::Table) {
    assert_eq!(a.schema(), b.schema());
    assert_eq!(a.nrows(), b.nrows());
    for (x, y) in a.columns().iter().zip(b.columns()) {
        match (x, y) {
            (Column::Cat(u), Column::Cat(v)) => assert_eq!(u, v),
            (Column::Num(u), Column::Num(v)) => {
                // Bit-identical, not approximately equal.
                let ub: Vec<u64> = u.iter().map(|f| f.to_bits()).collect();
                let vb: Vec<u64> = v.iter().map(|f| f.to_bits()).collect();
                assert_eq!(ub, vb);
            }
            _ => panic!("column type changed"),
        }
    }
}

#[test]
fn archives_byte_identical_across_thread_counts() {
    for d in [Dataset::Corel, Dataset::Criteo] {
        let error = if d.supports_lossy() { 0.05 } else { 0.0 };
        let t = d.generate(300, 23);
        let serial = ds_exec::with_thread_limit(1, || compress(&t, &cfg(error)))
            .unwrap_or_else(|e| panic!("{}: serial compress: {e}", d.name()));
        let parallel = ds_exec::with_thread_limit(8, || compress(&t, &cfg(error)))
            .unwrap_or_else(|e| panic!("{}: parallel compress: {e}", d.name()));
        assert_eq!(
            serial.as_bytes(),
            parallel.as_bytes(),
            "{}: archive bytes depend on thread count",
            d.name()
        );

        // Cross-decode: the 1-thread archive on 8 threads and vice versa.
        let r1 = ds_exec::with_thread_limit(8, || decompress(&serial))
            .unwrap_or_else(|e| panic!("{}: parallel decompress: {e}", d.name()));
        let r2 = ds_exec::with_thread_limit(1, || decompress(&parallel))
            .unwrap_or_else(|e| panic!("{}: serial decompress: {e}", d.name()));
        tables_identical(&r1, &r2);
    }
}
