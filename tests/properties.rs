//! Property-based integration tests: randomly generated tables (random
//! schemas, random contents) must satisfy the reconstruction contracts of
//! both semantic compressors, and corrupt archives must never panic.

use ds_core::{compress, decompress, DsArchive, DsConfig};
use ds_squish::{
    compress as squish_compress, decompress as squish_decompress, SquishArchive, SquishConfig,
};
use ds_table::{Column, Table};
use proptest::prelude::*;

/// Strategy: a small random table with 1–6 columns mixing categoricals
/// (small alphabets) and numerics (varied magnitudes), 1–80 rows.
fn arb_table() -> impl Strategy<Value = Table> {
    let ncols = 1usize..=6;
    let nrows = 1usize..=80;
    (ncols, nrows).prop_flat_map(|(ncols, nrows)| {
        let col = prop_oneof![
            // Categorical with alphabet <= 6.
            prop::collection::vec(0u8..6, nrows..=nrows)
                .prop_map(|v| Column::Cat(v.into_iter().map(|c| format!("c{c}")).collect())),
            // Numeric in a random magnitude band.
            (
                any::<bool>(),
                prop::collection::vec(-1000.0f64..1000.0, nrows..=nrows)
            )
                .prop_map(|(int, v)| {
                    let vals = v
                        .into_iter()
                        .map(|x| {
                            if int {
                                x.round()
                            } else {
                                (x * 100.0).round() / 100.0
                            }
                        })
                        .collect();
                    Column::Num(vals)
                }),
        ];
        prop::collection::vec(col, ncols..=ncols).prop_map(|cols| {
            let named = cols
                .into_iter()
                .enumerate()
                .map(|(i, c)| (format!("col{i}"), c))
                .collect();
            Table::from_columns(named).expect("equal lengths by construction")
        })
    })
}

fn check_contract(original: &Table, restored: &Table, error: f64) {
    assert_eq!(original.nrows(), restored.nrows());
    for (a, b) in original.columns().iter().zip(restored.columns()) {
        match (a, b) {
            (Column::Cat(x), Column::Cat(y)) => assert_eq!(x, y),
            (Column::Num(x), Column::Num(y)) => {
                let min = x.iter().copied().fold(f64::INFINITY, f64::min);
                let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let bound = error * (max - min) * (1.0 + 1e-7) + 1e-9;
                for (u, v) in x.iter().zip(y) {
                    assert!((u - v).abs() <= bound, "|{u} - {v}| > {bound}");
                }
            }
            _ => panic!("column type changed"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn deepsqueeze_contract_on_random_tables(table in arb_table(), lossy in any::<bool>()) {
        let error = if lossy { 0.10 } else { 0.0 };
        let cfg = DsConfig {
            error_threshold: error,
            code_size: 2,
            max_epochs: 3,
            ..Default::default()
        };
        let archive = compress(&table, &cfg).expect("random table compresses");
        let restored = decompress(&archive).expect("decodes");
        check_contract(&table, &restored, error);
    }

    #[test]
    fn squish_contract_on_random_tables(table in arb_table(), lossy in any::<bool>()) {
        let error = if lossy { 0.10 } else { 0.0 };
        let cfg = SquishConfig { error_threshold: error, ..Default::default() };
        let archive = squish_compress(&table, &cfg).expect("random table compresses");
        let restored = squish_decompress(&archive).expect("decodes");
        check_contract(&table, &restored, error);
    }

    #[test]
    fn corrupt_archives_never_panic(
        table in arb_table(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let cfg = DsConfig { error_threshold: 0.1, max_epochs: 2, ..Default::default() };
        let bytes = compress(&table, &cfg).expect("compresses").as_bytes().to_vec();
        let mut bad = bytes.clone();
        for (idx, mask) in flips {
            let i = idx.index(bad.len());
            bad[i] ^= mask | 1;
        }
        let _ = decompress(&DsArchive::from_bytes(bad)); // must not panic
        // Truncations too.
        let _ = decompress(&DsArchive::from_bytes(bytes[..bytes.len() / 2].to_vec()));
    }

    #[test]
    fn corrupt_squish_archives_never_panic(
        table in arb_table(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let cfg = SquishConfig { error_threshold: 0.1, ..Default::default() };
        let bytes = squish_compress(&table, &cfg).expect("compresses").as_bytes().to_vec();
        let mut bad = bytes.clone();
        for (idx, mask) in flips {
            let i = idx.index(bad.len());
            bad[i] ^= mask | 1;
        }
        let _ = squish_decompress(&SquishArchive::from_bytes(bad));
        let _ = squish_decompress(&SquishArchive::from_bytes(bytes[..bytes.len() / 3].to_vec()));
    }

    #[test]
    fn csv_roundtrip_on_random_tables(table in arb_table()) {
        let csv = ds_table::csv::write_csv(&table);
        prop_assert_eq!(csv.len(), table.raw_size());
        let back = ds_table::csv::read_csv(&csv, table.schema().clone()).expect("parses");
        // Numeric formatting is canonical, so values roundtrip through text.
        check_contract(&table, &back, 0.0);
    }
}
