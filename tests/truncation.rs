//! Truncation robustness: every prefix of a valid archive — v1 monolithic
//! or v2 sharded — must yield a typed error, never a panic or an
//! out-of-bounds read. Mirrors the crate-level negative tests at the
//! integration boundary where real files get cut short.

use ds_core::{compress, decompress, decompress_rows, inspect, DsArchive, DsConfig};
use ds_table::gen::Dataset;

fn small_archive(shard_rows: usize) -> Vec<u8> {
    // Monitor + lossy threshold trains a model, so v2 shards carry empty
    // decoder blobs and depend on the manifest's shared decoder — no
    // prefix of the container can masquerade as a complete v1 archive.
    let t = Dataset::Monitor.generate(60, 23);
    let cfg = DsConfig {
        error_threshold: 0.1,
        max_epochs: 2,
        shard_rows,
        ..Default::default()
    };
    compress(&t, &cfg).expect("compresses").as_bytes().to_vec()
}

fn assert_every_prefix_errors(bytes: &[u8]) {
    for cut in 0..bytes.len() {
        let archive = DsArchive::from_bytes(bytes[..cut].to_vec());
        assert!(
            decompress(&archive).is_err(),
            "decompress accepted a {cut}-byte prefix of a {}-byte archive",
            bytes.len()
        );
        // Ranged reads go through the same validation.
        assert!(decompress_rows(&archive, 0..10).is_err());
        // `inspect` is a header-only peek, so a prefix containing a full
        // v1 envelope (e.g. the start of shard 0) may legitimately parse;
        // it must simply never panic.
        let _ = inspect(&archive);
    }
}

#[test]
fn every_truncation_of_a_v1_archive_errors() {
    assert_every_prefix_errors(&small_archive(0));
}

#[test]
fn every_truncation_of_a_v2_container_errors() {
    let bytes = small_archive(16);
    assert!(ds_shard::is_sharded(&bytes));
    assert_every_prefix_errors(&bytes);
}

/// Flipping a byte inside each shard blob trips that shard's CRC — never
/// a panic, never silent acceptance of wrong rows.
#[test]
fn v2_shard_corruption_is_detected() {
    let bytes = small_archive(16);
    let targets: Vec<usize> = {
        let reader = ds_shard::ShardReader::open(&bytes).expect("opens");
        assert!(reader.n_shards() >= 3);
        reader
            .entries()
            .iter()
            .map(|e| e.offset + e.len / 2)
            .collect()
    };
    for pos in targets {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(
            decompress(&DsArchive::from_bytes(bad)).is_err(),
            "corruption at byte {pos} went undetected"
        );
    }
}

/// Truncated parq blobs return typed errors from `read_table`.
#[test]
fn parq_read_table_errors_on_truncation() {
    use ds_codec::parq::{self, ParqColumn};
    let cols = vec![
        ("id".to_owned(), ParqColumn::U32((0..100).collect())),
        (
            "val".to_owned(),
            ParqColumn::F64((0..100).map(|i| i as f64 * 0.5).collect()),
        ),
        (
            "tag".to_owned(),
            ParqColumn::Str((0..100).map(|i| format!("t{}", i % 7)).collect()),
        ),
    ];
    let (blob, _) = parq::write_table(&cols).expect("writes");
    assert!(parq::read_table(&blob).is_ok());
    for cut in 0..blob.len() {
        assert!(
            parq::read_table(&blob[..cut]).is_err(),
            "read_table accepted a {cut}-byte prefix"
        );
    }
}
