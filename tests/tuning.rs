//! Integration tests of the Fig. 5 tuning loop against the real pipeline.

use ds_core::{compress, tune, DsConfig, TuneConfig};
use ds_table::gen;

fn base(error: f64, epochs: usize) -> DsConfig {
    DsConfig {
        error_threshold: error,
        max_epochs: epochs,
        ..Default::default()
    }
}

#[test]
fn tuned_configuration_is_no_worse_than_the_grid_median() {
    // The point of tuning: the chosen configuration should be at least as
    // good as a typical untuned grid point.
    let t = gen::corel_like(1_200, 31);
    let raw = t.raw_size() as f64;
    let codes = vec![1usize, 2, 4];
    let experts = vec![1usize, 2];
    let cfg = TuneConfig {
        samples: vec![600],
        codes: codes.clone(),
        experts: experts.clone(),
        eps: 1.0,
        budget: 5,
        base: base(0.10, 12),
    };
    let outcome = tune(&t, &cfg).expect("tuning runs");
    let mut tuned = base(0.10, 12);
    tuned.code_size = outcome.config.code_size;
    tuned.n_experts = outcome.config.n_experts;
    let tuned_ratio = compress(&t, &tuned).expect("compresses").size() as f64 / raw;

    // Evaluate the full grid directly for the comparison.
    let mut ratios = Vec::new();
    for &k in &codes {
        for &e in &experts {
            let mut c = base(0.10, 12);
            c.code_size = k;
            c.n_experts = e;
            ratios.push(compress(&t, &c).expect("compresses").size() as f64 / raw);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    assert!(
        tuned_ratio <= median * 1.02,
        "tuned {tuned_ratio:.4} worse than grid median {median:.4}"
    );
}

#[test]
fn increasing_sample_schedule_is_respected() {
    let t = gen::monitor_like(2_000, 37);
    let cfg = TuneConfig {
        samples: vec![200, 800],
        codes: vec![2],
        experts: vec![1],
        eps: 1e-6, // first sample will not satisfy this
        budget: 1,
        base: base(0.10, 6),
    };
    let outcome = tune(&t, &cfg).expect("tuning runs");
    // Two sample rounds → two trials recorded (budget 1 each).
    assert_eq!(outcome.trials.len(), 2);
}

#[test]
fn tuning_works_on_categorical_only_tables() {
    let t = gen::census_like(600, 41);
    let cfg = TuneConfig {
        samples: vec![300],
        codes: vec![2, 4],
        experts: vec![1],
        eps: 1.0,
        budget: 3,
        base: base(0.0, 6),
    };
    let outcome = tune(&t, &cfg).expect("tuning runs");
    assert!(outcome.trials.iter().all(|tr| tr.ratio.is_finite()));
}
