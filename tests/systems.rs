//! Cross-system integration tests: the four compressors of the paper's
//! evaluation agree on the data and respect their respective contracts.

use ds_bench::baselines::{gzip_roundtrip, parquet_roundtrip, parquet_size};
use ds_core::{compress, DsConfig};
use ds_squish::{compress as squish_compress, decompress as squish_decompress, SquishConfig};
use ds_table::gen::Dataset;

#[test]
fn every_system_compresses_every_dataset() {
    for d in Dataset::ALL {
        // 2000 rows: enough for the f64 dictionary mode of the parquet
        // container to engage on quantized-decimal columns (below that,
        // nearly every float is distinct and no lossless columnar layout
        // can beat compact decimal text).
        let t = d.generate(2_000, 5);
        let raw = t.raw_size();
        let (gz, _) = gzip_roundtrip(&t);
        let pq = parquet_roundtrip(&t);
        let error = if d.supports_lossy() { 0.10 } else { 0.0 };
        let sq = squish_compress(
            &t,
            &SquishConfig {
                error_threshold: error,
                ..Default::default()
            },
        )
        .expect("squish compresses");
        let ds = compress(
            &t,
            &DsConfig {
                error_threshold: error,
                max_epochs: 5,
                ..Default::default()
            },
        )
        .expect("DS compresses");
        // Each system produces something smaller than raw on every dataset.
        assert!(gz < raw, "{}: gzip {gz} >= raw {raw}", d.name());
        assert!(pq < raw, "{}: parquet {pq} >= raw {raw}", d.name());
        assert!(sq.size() < raw, "{}: squish >= raw", d.name());
        assert!(ds.size() < raw, "{}: DS >= raw", d.name());
    }
}

#[test]
fn squish_is_exact_on_categoricals_and_bounded_on_numerics() {
    let t = Dataset::Census.generate(500, 9);
    let archive = squish_compress(&t, &SquishConfig::default()).expect("compresses");
    assert_eq!(squish_decompress(&archive).expect("decodes"), t);

    let t = Dataset::Monitor.generate(500, 9);
    let archive = squish_compress(
        &t,
        &SquishConfig {
            error_threshold: 0.05,
            ..Default::default()
        },
    )
    .expect("compresses");
    let restored = squish_decompress(&archive).expect("decodes");
    for (a, b) in t.columns().iter().zip(restored.columns()) {
        let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = 0.05 * (max - min) * (1.0 + 1e-7) + 1e-9;
        for (u, v) in x.iter().zip(y) {
            assert!((u - v).abs() <= bound);
        }
    }
}

#[test]
fn semantic_compressors_beat_parquet_on_structured_categoricals() {
    // census_like plants functional dependencies; both semantic systems
    // must exploit them while Parquet (per-column) cannot.
    let t = Dataset::Census.generate(2_000, 13);
    let pq = parquet_size(&t);
    let sq = squish_compress(&t, &SquishConfig::default())
        .expect("squish compresses")
        .size();
    assert!(
        sq < pq,
        "squish ({sq}) should beat per-column parquet ({pq}) on FD-rich data"
    );
}

#[test]
fn deepsqueeze_improves_with_training_budget() {
    let t = Dataset::Corel.generate(1_500, 21);
    let size_at = |epochs: usize| {
        compress(
            &t,
            &DsConfig {
                error_threshold: 0.10,
                code_size: 2,
                max_epochs: epochs,
                ..Default::default()
            },
        )
        .expect("compresses")
        .size()
    };
    let short = size_at(2);
    let long = size_at(60);
    assert!(
        long < short,
        "more training should shrink the archive: {short} -> {long}"
    );
}

#[test]
fn kmeans_variant_matches_moe_contract() {
    use ds_core::cluster::compress_kmeans;
    let t = Dataset::Monitor.generate(500, 33);
    let cfg = DsConfig {
        error_threshold: 0.10,
        n_experts: 3,
        max_epochs: 5,
        ..Default::default()
    };
    let archive = compress_kmeans(&t, &cfg).expect("k-means compresses");
    let restored = ds_core::decompress(&archive).expect("decodes");
    assert_eq!(restored.nrows(), t.nrows());
    for (a, b) in t.columns().iter().zip(restored.columns()) {
        let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = 0.10 * (max - min) * (1.0 + 1e-7) + 1e-9;
        for (u, v) in x.iter().zip(y) {
            assert!((u - v).abs() <= bound);
        }
    }
}

#[test]
fn squish_dominates_itcompress_as_the_paper_claims() {
    // §7.1: "Squish strongly dominates other semantic compression
    // algorithms (e.g., Spartan, ItCompress), we compare only against
    // Squish" — verify rather than assume.
    use ds_itcompress::{compress as it_compress, ItConfig};
    for (d, error) in [(Dataset::Census, 0.0), (Dataset::Monitor, 0.10)] {
        let t = d.generate(1_500, 77);
        let sq = squish_compress(
            &t,
            &SquishConfig {
                error_threshold: error,
                ..Default::default()
            },
        )
        .expect("squish compresses")
        .size();
        let it = it_compress(
            &t,
            &ItConfig {
                representatives: 32,
                iterations: 5,
                error_threshold: error,
                seed: 1,
            },
        )
        .expect("itcompress compresses")
        .size();
        assert!(
            sq < it,
            "{}: squish ({sq}) should dominate itcompress ({it})",
            d.name()
        );
    }
}
