//! Sharded-container integration tests: random tables × shard sizes must
//! round-trip byte-identically through the v2 row-group container, partial
//! reads must agree with slices of the full decode (and touch only the
//! intersecting shards), and results must not depend on the thread count.

use ds_core::{
    compress, compress_sharded_to, decompress, decompress_rows, decompress_rows_with_stats,
    DsConfig,
};
use ds_table::csv::write_csv;
use ds_table::gen::Dataset;
use ds_table::{Column, Table};
use proptest::prelude::*;

/// Strategy: a small random table with 1–5 columns mixing categoricals
/// and numerics, 1–60 rows (mirrors `tests/properties.rs`).
fn arb_table() -> impl Strategy<Value = Table> {
    let ncols = 1usize..=5;
    let nrows = 1usize..=60;
    (ncols, nrows).prop_flat_map(|(ncols, nrows)| {
        let col = prop_oneof![
            prop::collection::vec(0u8..6, nrows..=nrows)
                .prop_map(|v| Column::Cat(v.into_iter().map(|c| format!("c{c}")).collect())),
            prop::collection::vec(-1000.0f64..1000.0, nrows..=nrows)
                .prop_map(|v| Column::Num(v.into_iter().map(|x| x.round()).collect())),
        ];
        prop::collection::vec(col, ncols..=ncols).prop_map(|cols| {
            let named = cols
                .into_iter()
                .enumerate()
                .map(|(i, c)| (format!("col{i}"), c))
                .collect();
            Table::from_columns(named).expect("equal lengths by construction")
        })
    })
}

fn lossless_cfg(shard_rows: usize) -> DsConfig {
    DsConfig {
        error_threshold: 0.0,
        code_size: 2,
        max_epochs: 2,
        shard_rows,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lossless sharded round-trips reproduce the table byte-for-byte for
    /// every shard-size class, and `read_rows(a..b)` equals the same slice
    /// of the full decode.
    #[test]
    fn sharded_roundtrip_is_exact_for_any_shard_size(
        table in arb_table(),
        pick in 0usize..4,
        lo in any::<prop::sample::Index>(),
        hi in any::<prop::sample::Index>(),
    ) {
        let nrows = table.nrows();
        let shard_rows = [1, 7, 64, nrows + 1][pick];
        let archive = compress(&table, &lossless_cfg(shard_rows)).expect("compresses");
        let restored = decompress(&archive).expect("decodes");
        prop_assert_eq!(write_csv(&table), write_csv(&restored));

        let i = lo.index(nrows + 1);
        let j = hi.index(nrows + 1);
        let (a, b) = (i.min(j), i.max(j));
        let part = decompress_rows(&archive, a..b).expect("partial decode");
        prop_assert_eq!(write_csv(&part), write_csv(&restored.slice_rows(a..b)));
    }
}

/// Acceptance: on a 10-shard archive, a row range touching shards 2..=5
/// decodes exactly 4 of the 10 shards and matches the full decode's slice.
#[test]
fn ten_shard_partial_read_decodes_only_intersecting_shards() {
    let t = Dataset::Census.generate(200, 17);
    let cfg = DsConfig {
        max_epochs: 3,
        shard_rows: 20,
        ..Default::default()
    };
    let archive = compress(&t, &cfg).expect("compresses");
    let full = decompress(&archive).expect("full decode");

    let (part, stats) = decompress_rows_with_stats(&archive, 45..105).expect("partial decode");
    assert_eq!(stats.shards_total, 10);
    assert_eq!(stats.shards_decoded, 4, "rows 45..105 span shards 2..=5");
    assert_eq!(write_csv(&part), write_csv(&full.slice_rows(45..105)));

    // A range inside one shard decodes exactly that shard.
    let (one, stats) = decompress_rows_with_stats(&archive, 60..79).expect("partial decode");
    assert_eq!(stats.shards_decoded, 1);
    assert_eq!(write_csv(&one), write_csv(&full.slice_rows(60..79)));
}

/// Sharded compression and partial decode are bit-identical whether the
/// pool runs 1 or 8 threads.
#[test]
fn sharded_container_is_thread_count_invariant() {
    let t = Dataset::Monitor.generate(150, 5);
    let cfg = DsConfig {
        error_threshold: 0.05,
        max_epochs: 2,
        shard_rows: 32,
        ..Default::default()
    };
    let one = ds_exec::with_thread_limit(1, || compress(&t, &cfg).expect("compresses"));
    let eight = ds_exec::with_thread_limit(8, || compress(&t, &cfg).expect("compresses"));
    assert_eq!(one.as_bytes(), eight.as_bytes());

    let p1 = ds_exec::with_thread_limit(1, || decompress_rows(&one, 10..130).expect("decodes"));
    let p8 = ds_exec::with_thread_limit(8, || decompress_rows(&one, 10..130).expect("decodes"));
    assert_eq!(write_csv(&p1), write_csv(&p8));
}

/// Legacy v1 (monolithic) archives are untouched by the sharding feature:
/// they still decode, and ranged reads fall back to decode-then-slice.
#[test]
fn legacy_monolithic_archives_still_decode() {
    let t = Dataset::Corel.generate(120, 7);
    let cfg = DsConfig {
        error_threshold: 0.05,
        max_epochs: 2,
        shard_rows: 0,
        ..Default::default()
    };
    let archive = compress(&t, &cfg).expect("compresses");
    let full = decompress(&archive).expect("decodes");
    assert_eq!(full.nrows(), 120);

    let (part, stats) = decompress_rows_with_stats(&archive, 30..90).expect("ranged decode");
    assert_eq!((stats.shards_total, stats.shards_decoded), (1, 1));
    assert_eq!(write_csv(&part), write_csv(&full.slice_rows(30..90)));
}

/// A sink that fails when a shard's row range lands in it: the error must
/// name the failing shard index and its row range, not surface as a bare
/// I/O error.
#[test]
fn shard_failure_names_the_shard_and_row_range() {
    /// Accepts the first `write` call (shard 0's blob) wholesale, then
    /// fails — so shard 1 is the first shard that cannot be flushed.
    struct FailingSink {
        writes_done: usize,
    }
    impl std::io::Write for FailingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.writes_done == 0 {
                self.writes_done = 1;
                Ok(buf.len())
            } else {
                Err(std::io::Error::other("disk full (synthetic)"))
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let t = Dataset::Monitor.generate(100, 5);
    let cfg = DsConfig {
        error_threshold: 0.05,
        max_epochs: 2,
        shard_rows: 40,
        ..Default::default()
    };
    let err = compress_sharded_to(&t, &cfg, FailingSink { writes_done: 0 })
        .err()
        .expect("second shard flush must fail");
    let msg = err.to_string();
    assert!(msg.contains("shard 1"), "error must name the shard: {msg}");
    assert!(
        msg.contains("rows 40..80"),
        "error must name the row range: {msg}"
    );
    assert!(
        msg.contains("disk full"),
        "error must keep the cause: {msg}"
    );
}
