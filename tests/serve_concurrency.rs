//! ds-serve integration: many threads hammering one shared [`Archive`]
//! must each see exactly what a single-threaded full decode sees, the
//! shard cache must respect its byte budget under eviction churn, and
//! every truncated prefix of a container must fail with a typed error —
//! never a panic — through the positioned-read path.

use std::sync::{Arc, OnceLock};

use ds_core::{compress, decompress, DsConfig};
use ds_serve::{Archive, ServeError};
use ds_table::csv::write_csv;
use ds_table::gen::Dataset;
use ds_table::Table;

/// One trained fixture for the whole file: 230 rows in 8 shards (the
/// last one short), plus the ground-truth full decode.
fn fixture() -> &'static (Vec<u8>, Table) {
    static FIXTURE: OnceLock<(Vec<u8>, Table)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let t = Dataset::Census.generate(230, 23);
        let cfg = DsConfig {
            error_threshold: 0.0,
            code_size: 2,
            max_epochs: 3,
            shard_rows: 30,
            ..Default::default()
        };
        let archive = compress(&t, &cfg).expect("compresses");
        let full = decompress(&archive).expect("decodes");
        (archive.as_bytes().to_vec(), full)
    })
}

/// Deterministic per-thread range sequence (tiny LCG; no global RNG so
/// every run replays the same workload).
fn ranges(seed: u64, total: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..n)
        .map(|_| {
            let a = next() % (total + 1);
            let b = next() % (total + 1);
            a.min(b)..a.max(b)
        })
        .collect()
}

#[test]
fn sixteen_client_hammer_matches_serial_decode() {
    let (bytes, full) = fixture();
    // A budget of ~3 shards keeps eviction churning while 16 threads
    // read, so insert/evict races get exercised, not just lookups.
    let shard_bytes = full.slice_rows(0..30).mem_size();
    let archive = Arc::new(Archive::with_cache(bytes.clone(), shard_bytes * 3).expect("opens"));

    std::thread::scope(|scope| {
        for client in 0..16u64 {
            let archive = Arc::clone(&archive);
            scope.spawn(move || {
                for range in ranges(client + 1, full.nrows(), 24) {
                    let got = archive.read_rows(range.clone()).expect("read_rows");
                    let want = full.slice_rows(range.clone());
                    assert_eq!(
                        write_csv(&got),
                        write_csv(&want),
                        "client {client} range {range:?} diverged from serial decode"
                    );
                }
            });
        }
    });

    let stats = archive.cache_stats();
    assert!(
        stats.bytes <= stats.capacity,
        "cache over budget after hammer: {} > {}",
        stats.bytes,
        stats.capacity
    );
    assert!(
        stats.evictions > 0,
        "a 3-shard budget over 8 shards must evict"
    );
    assert!(
        stats.hits > 0,
        "overlapping workloads must reuse cached shards"
    );
}

#[test]
fn cache_budget_holds_and_warm_reads_skip_decode() {
    let (bytes, full) = fixture();
    let shard_bytes = full.slice_rows(0..30).mem_size();
    let archive =
        Archive::with_cache(bytes.clone(), shard_bytes * 2 + shard_bytes / 2).expect("opens");

    // Cold pass over three shards: all misses, budget forces eviction.
    let (_, cold) = archive.read_rows_with_stats(0..90).expect("cold");
    assert_eq!(cold.shards_decoded, 3);
    assert_eq!(cold.cache_hits, 0);
    let stats = archive.cache_stats();
    assert!(
        stats.bytes <= stats.capacity,
        "{} > {}",
        stats.bytes,
        stats.capacity
    );
    assert!(
        stats.evictions >= 1,
        "3 decoded shards cannot fit a 2.5-shard budget"
    );

    // The most recently inserted shards survive; rereading them is free.
    let resident = archive.cache().lru_order();
    assert!(!resident.is_empty());
    let last = *resident.last().expect("nonempty");
    let rows = archive.entries()[last].rows.clone();
    let (got, warm) = archive.read_rows_with_stats(rows.clone()).expect("warm");
    assert_eq!(warm.shards_decoded, 0, "resident shard must not re-decode");
    assert_eq!(warm.cache_hits, 1);
    assert_eq!(write_csv(&got), write_csv(&full.slice_rows(rows)));
}

#[test]
fn every_truncated_prefix_errors_without_panic() {
    let (bytes, _) = fixture();
    for cut in 0..bytes.len() {
        let prefix = bytes[..cut].to_vec();
        match Archive::open(prefix) {
            Err(ServeError::NotSharded | ServeError::Shard(_) | ServeError::Io(_)) => {}
            Err(other) => panic!("cut {cut}: unexpected error class {other:?}"),
            Ok(archive) => {
                // If a prefix happens to parse, reading it must still
                // either work or fail typed — never panic.
                let _ = archive.read_rows(0..archive.total_rows());
            }
        }
    }
}

#[test]
fn concurrent_streams_match_the_full_csv() {
    let (bytes, full) = fixture();
    let archive = Arc::new(Archive::open(bytes.clone()).expect("opens"));
    let want = write_csv(full);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let archive = Arc::clone(&archive);
            let want = want.clone();
            scope.spawn(move || {
                let mut out: Vec<u8> = Vec::new();
                let n = archive
                    .stream_csv(0..archive.total_rows(), &mut out, true)
                    .expect("streams");
                assert_eq!(n as usize, full.nrows());
                assert_eq!(String::from_utf8(out).expect("utf8"), want);
            });
        }
    });
}
