//! Streaming-archival integration tests (§3): a compressor trained on one
//! window compresses later batches with the same fitted model, with exact
//! patches covering anything the fitted plans cannot represent.

use ds_core::{decompress, DsConfig, TrainedCompressor};
use ds_table::gen;
use ds_table::{Column, Table};

fn cfg() -> DsConfig {
    DsConfig {
        error_threshold: 0.10,
        code_size: 2,
        n_experts: 2,
        max_epochs: 8,
        ..Default::default()
    }
}

#[test]
fn batches_from_same_distribution_roundtrip_within_bounds() {
    let window = gen::monitor_like(1_000, 50);
    let tc = TrainedCompressor::train(&window, &cfg()).expect("trains");
    for seed in 51..54 {
        let batch = gen::monitor_like(500, seed);
        let archive = tc.compress_batch(&batch).expect("batch compresses");
        let restored = decompress(&archive).expect("batch decodes");
        assert_eq!(restored.nrows(), batch.nrows());
        for ((a, b), f) in batch
            .columns()
            .iter()
            .zip(restored.columns())
            .zip(batch.schema().fields())
        {
            let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
            // The streaming contract is 10% of the TRAINING window's range
            // (quantizers were fitted there); cells outside that envelope
            // come back bit-exact via patches. Accept either.
            let tw = window.column_by_name(&f.name).unwrap().as_num().unwrap();
            let min = tw.iter().copied().fold(f64::INFINITY, f64::min);
            let max = tw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let bound = 0.10 * (max - min) * (1.0 + 1e-7) + 1e-9;
            for (u, v) in x.iter().zip(y) {
                let exact = u.to_bits() == v.to_bits();
                assert!(
                    exact || (u - v).abs() <= bound,
                    "{}: batch cell drifted: |{u} - {v}| bound {bound}",
                    f.name
                );
            }
        }
    }
}

#[test]
fn unseen_categorical_values_are_patched_exactly() {
    // Train on a small alphabet, then stream a batch containing brand-new
    // values: reconstruction must be EXACT via the patch mechanism.
    let train_vals: Vec<String> = (0..600).map(|i| format!("v{}", i % 4)).collect();
    let train = Table::from_columns(vec![
        ("cat".into(), Column::Cat(train_vals)),
        (
            "num".into(),
            Column::Num((0..600).map(|i| f64::from(i % 50)).collect()),
        ),
    ])
    .expect("table");
    let tc = TrainedCompressor::train(&train, &cfg()).expect("trains");

    let batch_vals: Vec<String> = (0..200)
        .map(|i| {
            if i % 7 == 0 {
                format!("UNSEEN-{i}") // never in the training dictionary
            } else {
                format!("v{}", i % 4)
            }
        })
        .collect();
    let batch = Table::from_columns(vec![
        ("cat".into(), Column::Cat(batch_vals.clone())),
        (
            "num".into(),
            Column::Num((0..200).map(|i| f64::from(i % 50)).collect()),
        ),
    ])
    .expect("table");

    let archive = tc.compress_batch(&batch).expect("batch compresses");
    let restored = decompress(&archive).expect("batch decodes");
    assert_eq!(
        restored.column_by_name("cat").unwrap().as_cat().unwrap(),
        &batch_vals[..],
        "unseen categorical values must reconstruct exactly via patches"
    );
}

#[test]
fn out_of_range_numerics_are_patched_exactly() {
    let train = gen::monitor_like(800, 60);
    let tc = TrainedCompressor::train(&train, &cfg()).expect("trains");

    // A batch with extreme outliers far outside the fitted ranges.
    let mut batch = gen::monitor_like(300, 61);
    let named: Vec<(String, Column)> = batch
        .schema()
        .fields()
        .iter()
        .zip(batch.columns())
        .map(|(f, c)| {
            let mut v = c.as_num().unwrap().to_vec();
            v[0] = 1e12; // massive outlier in every column's first row
            (f.name.clone(), Column::Num(v))
        })
        .collect();
    batch = Table::from_columns(named).expect("table");

    let archive = tc.compress_batch(&batch).expect("batch compresses");
    let restored = decompress(&archive).expect("batch decodes");
    for (a, b) in batch.columns().iter().zip(restored.columns()) {
        let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
        assert_eq!(
            x[0].to_bits(),
            y[0].to_bits(),
            "outlier must come back exactly via a patch"
        );
    }
}

#[test]
fn batch_with_wrong_schema_rejected() {
    let train = gen::monitor_like(300, 70);
    let tc = TrainedCompressor::train(&train, &cfg()).expect("trains");
    let wrong = gen::census_like(100, 70);
    assert!(tc.compress_batch(&wrong).is_err());
}

#[test]
fn order_free_batches_still_reconstruct_unseen_values() {
    // Regression: patches address cells by original row index, which
    // order-free storage would scramble — `compress_batch` must therefore
    // preserve row order even when the config requests order-free.
    let train_vals: Vec<String> = (0..400).map(|i| format!("v{}", i % 3)).collect();
    let train = Table::from_columns(vec![("cat".into(), Column::Cat(train_vals))]).expect("table");
    let mut config = cfg();
    config.order_free = true;
    let tc = TrainedCompressor::train(&train, &config).expect("trains");

    let batch_vals: Vec<String> = (0..120)
        .map(|i| {
            if i % 11 == 0 {
                format!("NEW-{i}")
            } else {
                format!("v{}", i % 3)
            }
        })
        .collect();
    let batch =
        Table::from_columns(vec![("cat".into(), Column::Cat(batch_vals.clone()))]).expect("table");
    let archive = tc.compress_batch(&batch).expect("batch compresses");
    let restored = decompress(&archive).expect("batch decodes");
    assert_eq!(
        restored.column_by_name("cat").unwrap().as_cat().unwrap(),
        &batch_vals[..]
    );
}
