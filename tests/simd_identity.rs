//! End-to-end SIMD determinism (§3f): runtime kernel selection must never
//! change archive bytes. The same table compressed through the staged
//! streaming pipeline with the scalar reference kernels (`DS_SIMD=off`
//! semantics, via the scoped override) and with the detected level must
//! produce byte-identical containers, at every thread count — the NN
//! training path, the codec hot loops, and the checksums all sit behind
//! the same lane-group determinism contract.

use ds_core::{compress_stream_to, DsConfig};
use ds_table::gen;
use ds_table::stream::TableSource;

fn archive_bytes(level: ds_simd::Level, threads: usize) -> Vec<u8> {
    let t = gen::corel_like(600, 11);
    let cfg = DsConfig {
        error_threshold: 0.05,
        code_size: 2,
        n_experts: 2,
        max_epochs: 4,
        shard_rows: 128,
        ..Default::default()
    };
    ds_exec::with_thread_limit(threads, || {
        ds_simd::with_level(level, || {
            let src = TableSource::new(&t, 128);
            let mut out = Vec::new();
            compress_stream_to(&src, &cfg, &mut out).expect("compress");
            out
        })
    })
}

#[test]
fn kernel_level_never_changes_archive_bytes() {
    let scalar = archive_bytes(ds_simd::Level::Scalar, 1);
    let auto = archive_bytes(ds_simd::detected(), 1);
    assert_eq!(
        scalar, auto,
        "scalar and detected kernels must emit identical archives"
    );
    // Pool workers resolve their own level (the scoped override is
    // thread-local), so these runs mix kernel levels across threads —
    // the bytes still may not move.
    for threads in [2, 8] {
        assert_eq!(
            archive_bytes(ds_simd::detected(), threads),
            scalar,
            "archive bytes must not depend on thread count x kernel level"
        );
    }
}
