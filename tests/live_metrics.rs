//! Live-telemetry determinism: with timing disabled, a fixed request
//! stream produces byte-identical `METRICS` exposition, rolling-window
//! contents, and slow-request traces no matter how many pool threads
//! decode the shards. Runtime-class (`rt`) metrics are never recorded
//! with timing off, so the *whole* exposition is the timing-free subset
//! — the test asserts that too.
//!
//! One test function on purpose: the recorder and the live view are
//! process-global, so this file must not run other recorder-touching
//! tests concurrently.

use ds_core::{compress, DsConfig};
use ds_serve::Archive;
use ds_table::gen::Dataset;

#[test]
fn live_metrics_window_and_slow_traces_identical_across_thread_limits() {
    let t = Dataset::Monitor.generate(260, 31);
    let cfg = DsConfig {
        error_threshold: 0.05,
        code_size: 2,
        max_epochs: 3,
        shard_rows: 40,
        ..Default::default()
    };
    let bytes = compress(&t, &cfg).expect("compresses").as_bytes().to_vec();
    // Budget for ~2 decoded shards (7 in the archive) so the stream
    // forces evictions into the windowed counters.
    let shard_budget = {
        let probe = Archive::open(bytes.clone()).expect("opens");
        probe.read_rows(0..40).expect("probe decode").mem_size() * 5 / 2
    };
    // 9 requests with epochs every 3: two full epochs land in the ring,
    // METRICS itself fires mid-epoch, and `nonsense` exercises the error
    // counter. The final QUIT completes the third epoch.
    let requests = b"GET 0..100\nGET 60..140\nSTAT\nGET 0..40\nMETRICS\nGET 200..260\nGET 0..260\nnonsense\nQUIT\n";

    let run = |limit: usize| {
        ds_exec::with_thread_limit(limit, || {
            ds_obs::enable(false);
            ds_obs::live::arm(ds_obs::live::WindowCfg {
                epoch_requests: 3,
                windows: 2,
                slow_k: 3,
                compact: true,
            });
            let archive = Archive::with_cache(bytes.clone(), shard_budget).expect("opens");
            let mut out: Vec<u8> = Vec::new();
            let summary =
                ds_serve::serve_connection(&archive, &requests[..], &mut out).expect("serves");
            assert_eq!(summary.requests, 9);
            assert_eq!(summary.errors, 1);
            let exposition = ds_serve::metrics_text(&archive);
            let window = ds_obs::live::window().expect("armed");
            let window_text = ds_obs::live::render_prometheus(&window, None, &[]);
            let slow_text = format!("{:?}", ds_obs::live::slow_traces());
            ds_obs::live::disarm();
            let _ = ds_obs::drain(); // leave no events for the next run
            (exposition, window_text, slow_text)
        })
    };

    let (e1, w1, s1) = run(1);
    for needle in [
        "serve_requests_total 9",
        "serve_errors_total 1",
        "serve_requests_by_verb_total{label=\"get\"} 5",
        "serve_request_rows_bucket{le=",
        "serve_cache_hit_total",
        "serve_cache_evictions_total",
        "serve_cache_hit_ratio",
        "serve_archive_rows 260",
        "# slow request=",
        "# slow.span depth=0 name=\"serve.request\"",
    ] {
        assert!(e1.contains(needle), "exposition missing {needle}:\n{e1}");
    }
    // Timing off ⇒ no runtime-class series anywhere in the exposition.
    assert!(!e1.contains("rt=\"1\""), "rt series leaked:\n{e1}");
    assert!(!e1.contains("serve_request_us"), "rt hist leaked:\n{e1}");
    assert!(
        w1.contains("window_requests=0"),
        "window render is cumulative-free:\n{w1}"
    );
    assert!(s1.contains("SlowTrace"), "slow traces captured: {s1}");

    let (e2, w2, s2) = run(2);
    let (e8, w8, s8) = run(8);
    assert_eq!(e1, e2, "METRICS exposition differs between 1 and 2 threads");
    assert_eq!(e1, e8, "METRICS exposition differs between 1 and 8 threads");
    assert_eq!(w1, w2, "rolling window differs between 1 and 2 threads");
    assert_eq!(w1, w8, "rolling window differs between 1 and 8 threads");
    assert_eq!(s1, s2, "slow traces differ between 1 and 2 threads");
    assert_eq!(s1, s8, "slow traces differ between 1 and 8 threads");
}
