//! End-to-end integration tests: every dataset generator through the full
//! DeepSqueeze pipeline, checking the paper's reconstruction contract —
//! categorical columns exact, numeric columns within the error threshold.

use ds_core::{compress, decompress, DsConfig};
use ds_table::gen::Dataset;
use ds_table::{Column, Table};

fn fast_cfg(error: f64) -> DsConfig {
    DsConfig {
        error_threshold: error,
        code_size: 2,
        n_experts: 2,
        max_epochs: 6,
        ..Default::default()
    }
}

fn assert_contract(original: &Table, restored: &Table, error: f64) {
    assert_eq!(original.schema(), restored.schema());
    assert_eq!(original.nrows(), restored.nrows());
    for (a, b) in original.columns().iter().zip(restored.columns()) {
        match (a, b) {
            (Column::Cat(x), Column::Cat(y)) => assert_eq!(x, y, "categorical drift"),
            (Column::Num(x), Column::Num(y)) => {
                let min = x.iter().copied().fold(f64::INFINITY, f64::min);
                let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let bound = error * (max - min) * (1.0 + 1e-7) + 1e-9;
                for (u, v) in x.iter().zip(y) {
                    assert!(
                        (u - v).abs() <= bound,
                        "numeric error {} exceeds bound {bound}",
                        (u - v).abs()
                    );
                }
            }
            _ => panic!("column type changed"),
        }
    }
}

#[test]
fn all_datasets_roundtrip_at_ten_percent() {
    for d in Dataset::ALL {
        let error = if d.supports_lossy() { 0.10 } else { 0.0 };
        let t = d.generate(400, 17);
        let archive = compress(&t, &fast_cfg(error)).unwrap_or_else(|e| {
            panic!("{} failed to compress: {e}", d.name());
        });
        let restored = decompress(&archive)
            .unwrap_or_else(|e| panic!("{} failed to decompress: {e}", d.name()));
        assert_contract(&t, &restored, error);
        // No size assertion here: at 400 rows the decoder weights dominate
        // and a neural compressor legitimately cannot amortize them —
        // `compresses_below_raw_at_moderate_scale` covers sizes.
    }
}

#[test]
fn compresses_below_raw_at_moderate_scale() {
    for d in Dataset::ALL {
        let error = if d.supports_lossy() { 0.10 } else { 0.0 };
        // Census and Criteo carry the largest models (many categorical
        // heads / a 256-class shared layer), so they need more rows before
        // the decoder amortizes.
        let rows = match d {
            Dataset::Census | Dataset::Criteo => 6_000,
            _ => 2_500,
        };
        let t = d.generate(rows, 19);
        let cfg = DsConfig {
            max_epochs: 15,
            ..fast_cfg(error)
        };
        let archive = compress(&t, &cfg).expect("compresses");
        assert!(
            archive.size() < t.raw_size(),
            "{}: archive {} >= raw {}",
            d.name(),
            archive.size(),
            t.raw_size()
        );
    }
}

#[test]
fn tighter_thresholds_reconstruct_more_precisely() {
    let t = Dataset::Monitor.generate(600, 23);
    for error in [0.005, 0.05] {
        let archive = compress(&t, &fast_cfg(error)).expect("compresses");
        let restored = decompress(&archive).expect("decompresses");
        assert_contract(&t, &restored, error);
    }
}

#[test]
fn per_column_thresholds_respected_independently() {
    let t = Dataset::Monitor.generate(400, 29);
    // Tight on the first half of the columns, loose on the rest.
    let errors: Vec<f64> = (0..t.ncols())
        .map(|i| if i < t.ncols() / 2 { 0.005 } else { 0.10 })
        .collect();
    let cfg = DsConfig {
        per_column_errors: Some(errors.clone()),
        ..fast_cfg(0.0)
    };
    let archive = compress(&t, &cfg).expect("compresses");
    let restored = decompress(&archive).expect("decompresses");
    for (i, (a, b)) in t.columns().iter().zip(restored.columns()).enumerate() {
        let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = errors[i] * (max - min) * (1.0 + 1e-7) + 1e-9;
        for (u, v) in x.iter().zip(y) {
            assert!((u - v).abs() <= bound, "column {i}");
        }
    }
}

#[test]
fn archive_bytes_are_self_contained() {
    use ds_core::DsArchive;
    let t = Dataset::Forest.generate(300, 31);
    let archive = compress(&t, &fast_cfg(0.05)).expect("compresses");
    // Serialize to raw bytes, reload as a fresh archive, decompress.
    let bytes = archive.as_bytes().to_vec();
    let reloaded = DsArchive::from_bytes(bytes);
    let restored = decompress(&reloaded).expect("self-contained decode");
    assert_contract(&t, &restored, 0.05);
}

#[test]
fn zero_error_on_integer_columns_is_lossless() {
    // Forest's numeric columns are integers; an Exact quantizer must give
    // bit-perfect numerics at error 0.
    let t = Dataset::Forest.generate(250, 37);
    let archive = compress(&t, &fast_cfg(0.0)).expect("compresses");
    let restored = decompress(&archive).expect("decompresses");
    assert_eq!(t, restored);
}

#[test]
fn single_row_and_single_column_tables() {
    let one_row = Dataset::Corel.generate(1, 41);
    let archive = compress(&one_row, &fast_cfg(0.1)).expect("compresses");
    assert_eq!(decompress(&archive).expect("decodes").nrows(), 1);

    let t = Table::from_columns(vec![(
        "only".into(),
        Column::Cat((0..50).map(|i| format!("v{}", i % 3)).collect()),
    )])
    .expect("valid table");
    let archive = compress(&t, &fast_cfg(0.0)).expect("compresses");
    assert_eq!(decompress(&archive).expect("decodes"), t);
}
