//! Trace determinism: with timing disabled, the serialized ds-obs report
//! of a full sharded compress + decompress is byte-identical no matter
//! how many pool threads ran the work. Runtime-class scheduler metrics
//! (steals, queue depths, latencies) are dropped unless timing is on, so
//! the remaining span tree, counters, and series depend only on the
//! input — not on how it was scheduled.
//!
//! One test function on purpose: the recorder is process-global, so this
//! file must not run other recorder-touching tests concurrently.

use ds_core::{compress_sharded_to, decompress, DsArchive, DsConfig};
use ds_table::gen::Dataset;

#[test]
fn timing_free_trace_is_identical_across_thread_limits() {
    let t = Dataset::Monitor.generate(300, 9);
    let cfg = DsConfig {
        error_threshold: 0.05,
        code_size: 2,
        n_experts: 2,
        max_epochs: 3,
        shard_rows: 64,
        ..Default::default()
    };

    let run = |limit: usize| {
        ds_exec::with_thread_limit(limit, || {
            ds_obs::enable(false);
            let out = compress_sharded_to(&t, &cfg, Vec::new()).expect("compresses");
            let archive = DsArchive::from_bytes(out.sink);
            decompress(&archive).expect("decodes");
            ds_obs::sink::to_jsonl(&ds_obs::drain())
        })
    };

    let t1 = run(1);
    let t2 = run(2);
    let t8 = run(8);
    assert!(
        t1.contains("\"shard\"") && t1.contains("\"decode_shard\""),
        "trace must actually cover the sharded pipeline:\n{t1}"
    );
    assert_eq!(t1, t2, "trace differs between 1 and 2 threads");
    assert_eq!(t1, t8, "trace differs between 1 and 8 threads");
}
