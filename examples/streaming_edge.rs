//! Streaming-archival scenario (§3): a fleet of vehicles/sensors ships
//! message batches. Hyperparameters are tuned once up front ("the cost of
//! hyperparameter tuning is incurred only once"), one model is trained on
//! the calibration window, and then "the encoder half of the model can
//! even be pushed to the clients": every arriving batch is compressed
//! with the *same* fitted model via `compress_batch` — no retraining.
//! Cells the fitted plans cannot represent (drift) come back exactly via
//! patches, and the patch volume tells you when to retrain.
//!
//! ```text
//! cargo run --release --example streaming_edge
//! ```

use ds_core::{decompress, tune, TrainedCompressor, TuneConfig};
use ds_table::gen;

fn main() {
    // Tune on an initial calibration window.
    let calibration = gen::monitor_like(4_000, 100);
    let tune_cfg = TuneConfig {
        samples: vec![1_500],
        codes: vec![2, 4],
        experts: vec![1, 2, 3],
        eps: 0.05,
        budget: 5,
        base: ds_core::DsConfig {
            error_threshold: 0.05,
            max_epochs: 40,
            ..Default::default()
        },
    };
    let t0 = std::time::Instant::now();
    let outcome = tune(&calibration, &tune_cfg).expect("tuning runs");
    println!(
        "tuned once in {:.1?}: code_size={} experts={} ({} trials, converged at {:?} rows)",
        t0.elapsed(),
        outcome.config.code_size,
        outcome.config.n_experts,
        outcome.trials.len(),
        outcome.converged_at
    );

    // Train ONE model on the calibration window; push its encoder to the
    // edge; compress five arriving batches without retraining.
    let mut cfg = outcome.config;
    cfg.max_epochs = 60;
    let t0 = std::time::Instant::now();
    let compressor = TrainedCompressor::train(&calibration, &cfg).expect("trains once");
    println!("trained once in {:.1?}\n", t0.elapsed());

    let mut total_raw = 0usize;
    let mut total_compressed = 0usize;
    for window in 0..5u64 {
        let batch = gen::monitor_like(3_000, 200 + window);
        let t0 = std::time::Instant::now();
        let archive = compressor
            .compress_batch(&batch)
            .expect("window compresses");
        let encode_time = t0.elapsed();
        let restored = decompress(&archive).expect("window decodes");
        assert_eq!(restored.nrows(), batch.nrows());
        total_raw += batch.raw_size();
        total_compressed += archive.size();
        println!(
            "window {window}: {:>8} B -> {:>7} B ({:.2}%) in {:.0?} (no retraining)",
            batch.raw_size(),
            archive.size(),
            100.0 * archive.size() as f64 / batch.raw_size() as f64,
            encode_time
        );
    }
    println!(
        "\nstream total: {} B -> {} B ({:.2}%)",
        total_raw,
        total_compressed,
        100.0 * total_compressed as f64 / total_raw as f64
    );
}
