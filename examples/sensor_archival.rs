//! Batch-archival scenario (§3 of the paper): long-term storage of machine
//! telemetry under different error budgets, with the archive written to
//! and restored from disk.
//!
//! ```text
//! cargo run --release --example sensor_archival
//! ```

use ds_core::{compress, decompress, DsArchive, DsConfig};
use ds_table::gen;

fn main() {
    let table = gen::monitor_like(10_000, 7);
    let raw = table.raw_size();
    println!("telemetry: {} rows, {} bytes raw\n", table.nrows(), raw);
    println!(
        "{:>7}  {:>12}  {:>8}  {:>22}",
        "err", "compressed", "ratio", "decoder/codes/failures"
    );

    let mut best: Option<(f64, Vec<u8>)> = None;
    for error in [0.005, 0.01, 0.05, 0.10] {
        let cfg = DsConfig {
            error_threshold: error,
            code_size: 4,
            n_experts: 3,
            max_epochs: 80,
            ..Default::default()
        };
        let archive = compress(&table, &cfg).expect("compression succeeds");
        let b = archive.breakdown();
        println!(
            "{:>6.1}%  {:>12}  {:>7.2}%  {:>6}/{:>6}/{:>8}",
            error * 100.0,
            archive.size(),
            100.0 * archive.size() as f64 / raw as f64,
            b.decoder,
            b.codes,
            b.failures
        );
        if error == 0.05 {
            best = Some((error, archive.as_bytes().to_vec()));
        }
    }

    // Persist the 5% archive and restore it from disk — the archival loop.
    let (error, bytes) = best.expect("5% run recorded");
    let path = std::env::temp_dir().join("monitor_archive.dsqz");
    std::fs::write(&path, &bytes).expect("archive written");
    println!("\nwrote {} bytes to {}", bytes.len(), path.display());

    let loaded = DsArchive::from_bytes(std::fs::read(&path).expect("archive read"));
    let restored = decompress(&loaded).expect("archive decodes");
    assert_eq!(restored.nrows(), table.nrows());

    // Downstream analytics on the lossy copy: aggregate drift is bounded.
    let power = table.column_by_name("power").unwrap().as_num().unwrap();
    let power_restored = restored.column_by_name("power").unwrap().as_num().unwrap();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean(power): original {:.2} vs archived {:.2} (error budget {:.0}%)",
        mean(power),
        mean(power_restored),
        error * 100.0
    );
    let _ = std::fs::remove_file(&path);
}
