//! Lossless categorical archival: a Census-like table full of functional
//! dependencies, compressed by all four systems of the paper's evaluation.
//! Categorical data admits no lossiness (§6.3.1), so reconstruction must
//! be exact for both semantic compressors.
//!
//! ```text
//! cargo run --release --example census_catalog
//! ```

use ds_bench::baselines::{gzip_size, parquet_size};
use ds_core::{compress, decompress, DsConfig};
use ds_squish::{compress as squish_compress, decompress as squish_decompress, SquishConfig};
use ds_table::gen;

fn main() {
    let table = gen::census_like(8_000, 3);
    let raw = table.raw_size();
    println!(
        "census-like: {} rows × {} categorical columns, {} bytes raw\n",
        table.nrows(),
        table.ncols(),
        raw
    );

    let gz = gzip_size(&table);
    let pq = parquet_size(&table);
    println!(
        "gzip:        {:>8} bytes  ({:>5.2}%)",
        gz,
        100.0 * gz as f64 / raw as f64
    );
    println!(
        "parquet:     {:>8} bytes  ({:>5.2}%)",
        pq,
        100.0 * pq as f64 / raw as f64
    );

    let squish = squish_compress(&table, &SquishConfig::default()).expect("squish compresses");
    println!(
        "squish:      {:>8} bytes  ({:>5.2}%)  [model {} B, stream {} B]",
        squish.size(),
        100.0 * squish.size() as f64 / raw as f64,
        squish.model_bytes,
        squish.data_bytes
    );
    assert_eq!(squish_decompress(&squish).expect("exact"), table);

    let cfg = DsConfig {
        error_threshold: 0.0, // purely categorical: lossless by definition
        code_size: 6,
        n_experts: 2,
        max_epochs: 200,
        lr: 8e-3,
        lr_decay: 0.998,
        ..Default::default()
    };
    let archive = compress(&table, &cfg).expect("DS compresses");
    let b = archive.breakdown();
    println!(
        "deepsqueeze: {:>8} bytes  ({:>5.2}%)  [decoder {} B, codes {} B, failures {} B]",
        archive.size(),
        100.0 * archive.size() as f64 / raw as f64,
        b.decoder,
        b.codes,
        b.failures
    );

    // Categorical reconstruction must be EXACT — cell for cell.
    let restored = decompress(&archive).expect("DS decompresses");
    assert_eq!(restored, table);
    println!("\nboth semantic compressors reconstructed all cells exactly");

    // The planted FDs are what semantic compression exploits; show one.
    let state = table.column_by_name("state").unwrap().as_cat().unwrap();
    let division = table.column_by_name("division").unwrap().as_cat().unwrap();
    println!(
        "example dependency: state={} always implies division={}",
        state[0], division[0]
    );
}
