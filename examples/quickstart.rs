//! Quickstart: compress a table, inspect the archive, decompress, verify.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ds_core::{compress, decompress, DsConfig};
use ds_table::gen;

fn main() {
    // A Monitor-like telemetry table: 17 correlated numeric channels.
    let table = gen::monitor_like(5_000, 42);
    println!(
        "dataset: {} rows × {} columns, {} bytes raw (CSV)",
        table.nrows(),
        table.ncols(),
        table.raw_size()
    );

    // Compress with a 5% per-column error guarantee.
    let cfg = DsConfig {
        error_threshold: 0.05,
        code_size: 4,
        n_experts: 2,
        max_epochs: 60,
        ..Default::default()
    };
    let archive = compress(&table, &cfg).expect("compression succeeds");
    let b = archive.breakdown();
    println!(
        "compressed: {} bytes ({:.2}% of raw)",
        archive.size(),
        100.0 * archive.size() as f64 / table.raw_size() as f64
    );
    println!(
        "  decoder {:>7} B | codes {:>7} B | failures {:>7} B | metadata {:>6} B",
        b.decoder, b.codes, b.failures, b.metadata
    );

    // Decompress and verify the error contract.
    let restored = decompress(&archive).expect("decompression succeeds");
    assert_eq!(restored.nrows(), table.nrows());
    let mut worst_rel = 0.0f64;
    for (a, b) in table.columns().iter().zip(restored.columns()) {
        let (x, y) = (a.as_num().unwrap(), b.as_num().unwrap());
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = (max - min).max(f64::MIN_POSITIVE);
        for (u, v) in x.iter().zip(y) {
            worst_rel = worst_rel.max((u - v).abs() / range);
        }
    }
    println!(
        "worst relative reconstruction error: {:.4} (bound 0.05)",
        worst_rel
    );
    assert!(worst_rel <= 0.05 + 1e-9);
    println!("roundtrip verified: every value within the guaranteed bound");
}
