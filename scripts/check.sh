#!/usr/bin/env bash
# Repo gate: formatting, lints, tests, and the execution-layer bench probe
# in smoke mode. Run from the repo root:
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh fast     # skip the release build + bench probe
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ds-lint (decode-safety, taint + determinism dataflow gate)"
cargo run -q -p ds-lint

echo "==> cargo test"
cargo test -q

echo "==> cargo test (DS_SIMD=off: scalar reference kernels)"
DS_SIMD=off cargo test -q

echo "==> sharded container tests"
cargo test -q -p ds-shard
cargo test -q --test shard_roundtrip --test truncation

echo "==> serving layer tests"
cargo test -q -p ds-serve
cargo test -q --test serve_concurrency --test serve_trace --test live_metrics

echo "==> bench_gate (committed baselines)"
cargo run -q -p ds-bench --bin bench_gate

if [ "$mode" = "full" ]; then
  echo "==> release build"
  cargo build --release -q --workspace

  echo "==> exec_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_exec.smoke.json \
    cargo run --release -q -p ds-bench --bin exec_probe

  echo "==> codec_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_codec.smoke.json \
    cargo run --release -q -p ds-bench --bin codec_probe

  echo "==> shard_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_shard.smoke.json \
    cargo run --release -q -p ds-bench --bin shard_probe

  echo "==> obs_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_obs.smoke.json \
    cargo run --release -q -p ds-bench --bin obs_probe

  echo "==> stream_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_stream.smoke.json \
    cargo run --release -q -p ds-bench --bin stream_probe

  echo "==> serve_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_serve.smoke.json \
    cargo run --release -q -p ds-bench --bin serve_probe

  echo "==> bench_gate (smoke outputs)"
  cargo run --release -q -p ds-bench --bin bench_gate -- \
    --dir target --config scripts/bench_gate_smoke.toml

  echo "==> dsqz serve (stdio smoke: GET/STAT/METRICS)"
  smoke_dir="$(mktemp -d)"
  ./target/release/dsqz gen monitor 200 "$smoke_dir/s.csv"
  ./target/release/dsqz compress "$smoke_dir/s.csv" "$smoke_dir/s.dsqz" \
    --epochs 3 --shard-rows 50 --quiet
  echo "==> dsqz recompress (archive-as-source: byte-identity + chains)"
  ./target/release/dsqz recompress "$smoke_dir/s.dsqz" "$smoke_dir/s2.dsqz" \
    --epochs 3 --shard-rows 50 --quiet
  cmp "$smoke_dir/s.dsqz" "$smoke_dir/s2.dsqz"
  ./target/release/dsqz inspect "$smoke_dir/s2.dsqz" \
    | grep -q 'codec chains: legacy'
  ./target/release/dsqz recompress "$smoke_dir/s.dsqz" "$smoke_dir/s3.dsqz" \
    --epochs 3 --shard-rows 50 --numeric-probe --quiet
  ./target/release/dsqz inspect "$smoke_dir/s3.dsqz" \
    | grep -q 'codec chains (shard 0 column streams):'

  printf 'GET 10..20\nSTAT\nMETRICS\nQUIT\n' \
    | ./target/release/dsqz serve "$smoke_dir/s.dsqz" \
    > "$smoke_dir/stdio.out"
  grep -q '^OK rows=200' "$smoke_dir/stdio.out"
  grep -q 'errors=0' "$smoke_dir/stdio.out"
  grep -q 'codecs=legacy' "$smoke_dir/stdio.out"
  grep -q '^serve_archive_rows 200$' "$smoke_dir/stdio.out"
  grep -q '^serve_requests_by_verb_total{label="get"} 1$' "$smoke_dir/stdio.out"

  echo "==> dsqz serve (--metrics HTTP scrape smoke)"
  sleep 5 | ./target/release/dsqz serve "$smoke_dir/s.dsqz" \
    --metrics 127.0.0.1:0 > /dev/null 2> "$smoke_dir/serve.err" &
  serve_pid=$!
  metrics_url=""
  for _ in $(seq 1 50); do
    metrics_url="$(sed -n 's#.*metrics on \(http://[^ ]*\).*#\1#p' \
      "$smoke_dir/serve.err")"
    [ -n "$metrics_url" ] && break
    sleep 0.1
  done
  [ -n "$metrics_url" ] || {
    echo "--metrics endpoint never came up:"
    cat "$smoke_dir/serve.err"
    exit 1
  }
  curl -sf "$metrics_url" | grep -q '^serve_archive_rows 200$'
  kill "$serve_pid" 2> /dev/null || true
  wait "$serve_pid" 2> /dev/null || true
  rm -rf "$smoke_dir"
fi

echo "OK"
