#!/usr/bin/env bash
# Repo gate: formatting, lints, tests, and the execution-layer bench probe
# in smoke mode. Run from the repo root:
#
#   ./scripts/check.sh          # everything
#   ./scripts/check.sh fast     # skip the release build + bench probe
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ds-lint (decode-safety, taint + determinism dataflow gate)"
cargo run -q -p ds-lint

echo "==> cargo test"
cargo test -q

echo "==> cargo test (DS_SIMD=off: scalar reference kernels)"
DS_SIMD=off cargo test -q

echo "==> sharded container tests"
cargo test -q -p ds-shard
cargo test -q --test shard_roundtrip --test truncation

echo "==> serving layer tests"
cargo test -q -p ds-serve
cargo test -q --test serve_concurrency --test serve_trace

if [ "$mode" = "full" ]; then
  echo "==> release build"
  cargo build --release -q --workspace

  echo "==> exec_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_exec.smoke.json \
    cargo run --release -q -p ds-bench --bin exec_probe

  echo "==> codec_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_codec.smoke.json \
    cargo run --release -q -p ds-bench --bin codec_probe

  echo "==> shard_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_shard.smoke.json \
    cargo run --release -q -p ds-bench --bin shard_probe

  echo "==> obs_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_obs.smoke.json \
    cargo run --release -q -p ds-bench --bin obs_probe

  echo "==> stream_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_stream.smoke.json \
    cargo run --release -q -p ds-bench --bin stream_probe

  echo "==> serve_probe (smoke)"
  SMOKE=1 BENCH_OUT=target/BENCH_serve.smoke.json \
    cargo run --release -q -p ds-bench --bin serve_probe

  echo "==> dsqz serve (stdio smoke)"
  smoke_dir="$(mktemp -d)"
  ./target/release/dsqz gen monitor 200 "$smoke_dir/s.csv"
  ./target/release/dsqz compress "$smoke_dir/s.csv" "$smoke_dir/s.dsqz" \
    --epochs 3 --shard-rows 50 --quiet
  printf 'GET 10..20\nSTAT\nQUIT\n' \
    | ./target/release/dsqz serve "$smoke_dir/s.dsqz" \
    | grep -q '^OK rows=200'
  rm -rf "$smoke_dir"
fi

echo "OK"
