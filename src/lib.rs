//! Umbrella crate for the DeepSqueeze reproduction workspace.
//!
//! Re-exports the member crates so integration tests and examples can use a
//! single dependency root. See the individual crates for the real APIs.

pub use ds_bayesopt as bayesopt;
pub use ds_codec as codec;
pub use ds_core as core;
pub use ds_nn as nn;
pub use ds_squish as squish;
pub use ds_table as table;
